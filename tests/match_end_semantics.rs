//! Pins the shared end-position semantics between the reference oracle
//! and the compiled programs (satellite of the differential-fuzzing
//! issue).
//!
//! The ruling, stated once and tested here so every layer inherits it:
//!
//! * **Earliest end wins.** `Oracle::match_end` and the functional ISA
//!   interpreter (`cicero_isa::run(..).match_position`) both report the
//!   byte index just past the *earliest-ending* match — the DSA's
//!   halt-on-first-accept behaviour walked in position order. This holds
//!   at `O0` and at `O2`: the shortest-match transform (§4.2) only prunes
//!   continuations *beyond* the earliest acceptance, so it can never move
//!   the reported end.
//! * **The simulator may report any end.** Every cycle-level
//!   configuration — including the single-core one — resolves acceptance
//!   races in *hardware time*: S2→S2 forwarding lets one NFA path run
//!   ahead of queued threads at earlier positions (e.g. `gb|g` on `"gb"`
//!   can report end 2 before the `g`-only branch reaches its accept at
//!   end 1). The simulator is therefore only required to report *some*
//!   element of `Oracle::match_ends`; that contract is pinned in
//!   `simulator_ends_are_members_of_the_oracle_end_set` below and
//!   exercised across the whole config matrix by `crates/difftest`.

fn programs(pattern: &str) -> Vec<(&'static str, cicero_isa::Program)> {
    let o2 = cicero_core::compile(pattern).unwrap().into_program();
    let o0 = cicero_core::Compiler::with_options(cicero_core::CompilerOptions::unoptimized())
        .compile(pattern)
        .unwrap()
        .into_program();
    vec![("O0", o0), ("O2", o2)]
}

fn assert_end(pattern: &str, input: &[u8], expected: Option<usize>) {
    let oracle = regex_oracle::Oracle::new(pattern).unwrap();
    assert_eq!(
        oracle.match_end(input),
        expected,
        "oracle end for {pattern:?} on {:?}",
        String::from_utf8_lossy(input)
    );
    for (level, program) in programs(pattern) {
        let out = cicero_isa::run(&program, input);
        assert_eq!(
            out.match_position,
            expected,
            "{level} end for {pattern:?} on {:?}",
            String::from_utf8_lossy(input)
        );
    }
}

/// Greedy-looking quantifiers still end at the earliest admissible
/// position (the §4.2 shortest-match rule is observationally a no-op).
#[test]
fn quantifiers_report_the_earliest_end() {
    assert_end("a+", b"aaaa", Some(1));
    assert_end("^a+", b"aaaa", Some(1));
    assert_end("a{2,4}", b"aaaa", Some(2));
    assert_end("ab*", b"xabbb", Some(2));
    assert_end("a(b|c)*", b"abcbc", Some(1));
    assert_end("(ab){1,3}", b"ababab", Some(2));
    // A mandatory tail forces the longer expansion.
    assert_end("a+b", b"aaab", Some(4));
    assert_end("a{2,4}b", b"aaaab", Some(5));
}

/// Alternation order must not matter: the earliest *end* wins even when a
/// longer alternative is listed first or starts earlier in the input.
#[test]
fn alternation_reports_the_earliest_end() {
    assert_end("aa|a", b"aa", Some(1));
    assert_end("a|aa", b"aa", Some(1));
    assert_end("ab|cd", b"xcdab", Some(3));
    assert_end("abc|bc", b"zabc", Some(4));
    assert_end("(this|that)", b"say that", Some(8));
}

/// Anchors restrict which ends are admissible at all.
#[test]
fn anchors_pin_the_reported_end() {
    assert_end("a+$", b"baaa", Some(4));
    assert_end("^a+$", b"aaa", Some(3));
    assert_end("^ab", b"abab", Some(2));
    assert_end("ab$", b"abab", Some(4));
}

/// Non-matches report no end everywhere.
#[test]
fn non_matches_have_no_end() {
    assert_end("a+b", b"ccc", None);
    assert_end("^ab$", b"aab", None);
}

/// Empty-input and empty-alternative edges share the same rule.
#[test]
fn empty_edges_share_the_rule() {
    assert_end("ab|", b"", Some(0));
    assert_end("ab|", b"zz", Some(0));
    assert_end("a*b", b"b", Some(1));
}

/// Even a single simulated core is not earliest-end-exact: hardware-time
/// races are allowed, but every reported end must be one the oracle
/// admits.
#[test]
fn simulator_ends_are_members_of_the_oracle_end_set() {
    for (pattern, input) in
        [("gb|g", b"xgbx".as_slice()), ("aa|a", b"aa"), ("ab|cd", b"xcdab"), ("a+", b"aaaa")]
    {
        let oracle = regex_oracle::Oracle::new(pattern).unwrap();
        let ends = oracle.match_ends(input);
        for engines in [1usize, 2] {
            let config = cicero::sim::ArchConfig::old_organization(engines);
            for (level, program) in programs(pattern) {
                let report = cicero::sim::simulate(&program, input, &config);
                assert!(report.accepted, "{level} {pattern:?} on {engines} engine(s)");
                let end = report.match_position.expect("accepted runs report an end");
                assert!(
                    ends.contains(&end),
                    "{level} on {engines} engine(s): end {end} for {pattern:?} not in {ends:?}"
                );
            }
        }
    }
}

/// The earliest end is always the head of the oracle's full end set, and
/// the interpreter's report is always a member of it — the containment
/// the simulator contract builds on.
#[test]
fn earliest_end_heads_the_full_end_set() {
    for (pattern, input) in [
        ("a+", b"aaaa".as_slice()),
        ("ab|cd", b"xcdab"),
        ("a{2,4}b?", b"aaaab"),
        ("x(a?|a*)y", b"xxaayy"),
    ] {
        let oracle = regex_oracle::Oracle::new(pattern).unwrap();
        let ends = oracle.match_ends(input);
        assert_eq!(ends.first().copied(), oracle.match_end(input), "{pattern:?}");
        for (level, program) in programs(pattern) {
            let out = cicero_isa::run(&program, input);
            if let Some(position) = out.match_position {
                assert!(ends.contains(&position), "{level} end {position} not in {ends:?}");
            }
        }
    }
}
