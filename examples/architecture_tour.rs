//! Architecture tour: run one pattern across the configuration space and
//! print the microarchitectural counters — a miniature of the paper's
//! §6.2 evaluation, exposing *why* each organization behaves as it does.
//!
//! ```sh
//! cargo run --release --example architecture_tour
//! ```

use cicero::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An alternation-heavy pattern (the Protomata4-like regime where
    // parallel enumeration pays off).
    let pattern = "(C.{2,4}CH)|(D.[DNS][LIVFYW])|(N[^P][ST])|(W.{3}[KR]H)";
    let compiled = compile(pattern)?;
    println!("pattern: {pattern}");
    println!("{} instructions, D_offset {}\n", compiled.code_size(), compiled.d_offset());

    // One 2000-residue input with no match: worst-case full scan.
    let input: Vec<u8> = (0..2000u32)
        .map(|i| b"ACDEFGILMQ"[(i.wrapping_mul(2654435761) >> 28) as usize % 10])
        .collect();

    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "config", "cycles", "us", "W·µs", "instr", "hit%", "memstl", "winstl", "xfers"
    );
    for config in [
        ArchConfig::old_organization(1),
        ArchConfig::old_organization(4),
        ArchConfig::old_organization(9),
        ArchConfig::old_organization(16),
        ArchConfig::old_organization(32),
        ArchConfig::new_organization(8, 1),
        ArchConfig::new_organization(16, 1),
        ArchConfig::new_organization(32, 1),
        ArchConfig::new_organization(8, 4),
        ArchConfig::new_organization(16, 4),
    ] {
        let report = simulate(compiled.program(), &input, &config);
        let us = report.time_us(config.clock_mhz());
        println!(
            "{:<16} {:>8} {:>8.2} {:>8.2} {:>9} {:>8.1}% {:>7} {:>7} {:>7}",
            config.name(),
            report.cycles,
            us,
            us * cicero::sim::power_watts(&config),
            report.instructions,
            report.icache_hit_rate() * 100.0,
            report.memory_stall_cycles,
            report.window_stall_cycles,
            report.cross_engine_transfers,
        );
    }

    println!("\nreading the table:");
    println!(" - OLD 1xM: cross-engine transfers rise with M; gains saturate early (Table 2)");
    println!(" - NEW Nx1: no transfers — in-engine balancing spreads work across window slots");
    println!(" - NEW NxM: extra engines mostly idle (only the last core feeds the ring)");
    Ok(())
}
