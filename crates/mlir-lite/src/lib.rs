//! A minimal MLIR-like IR infrastructure.
//!
//! The CGO'25 paper builds its compiler on MLIR to get *multi-level*
//! intermediate representations: a high-level `regex` dialect for algebraic
//! optimizations and a low-level `cicero` dialect for back-end ones. Rust has
//! no mature MLIR bindings, so this crate reproduces the MLIR abstractions
//! the two dialects actually need, from scratch:
//!
//! * [`Operation`]s carrying a dialect-qualified name, an attribute
//!   dictionary and nested single-block [`Region`]s;
//! * [`Attribute`]s (booleans, integers, characters, strings, symbols and
//!   boolean arrays — the types in Tables 3 and 4 of the paper);
//! * a [`DialectRegistry`](dialect::Context) with per-op definitions and
//!   verifiers ([`Context::verify`] walks the IR recursively, like
//!   `mlir::verify`);
//! * a textual printer/parser pair for the generic operation form (round-
//!   trippable, used for FileCheck-style tests and the IR-dump facilities);
//! * [`RewritePattern`]s applied by a greedy
//!   fixed-point driver (the moral equivalent of
//!   `applyPatternsAndFoldGreedily`, which backs MLIR canonicalization);
//! * a [`PassManager`] running [`Pass`]es
//!   with optional inter-pass verification and per-pass timing (the paper
//!   reports per-stage compile times in Figure 9).
//!
//! # Deliberate restrictions
//!
//! Unlike full MLIR there are **no SSA values and no multi-block CFG
//! regions**: the `regex` dialect is purely structural (nested regions) and
//! the `cicero` dialect models control flow with symbol references, exactly
//! as the paper describes (§3.3). Dropping the unused machinery keeps the
//! infrastructure small and the invariants airtight.
//!
//! # Example
//!
//! ```
//! use mlir_lite::{Attribute, Operation};
//!
//! let mut op = Operation::new("regex.match_char");
//! op.set_attr("target_char", Attribute::Char(b'a'));
//! let text = op.to_text();
//! assert_eq!(text.trim(), "regex.match_char {target_char = 'a'}");
//! let reparsed = mlir_lite::parse(&text)?;
//! assert_eq!(reparsed, op);
//! # Ok::<(), mlir_lite::ParseError>(())
//! ```

pub mod attribute;
pub mod dialect;
pub mod op;
pub mod parser;
pub mod pass;
pub mod printer;
pub mod rewrite;

pub use attribute::Attribute;
pub use dialect::{AttrKind, AttrSpec, Context, Dialect, OpDefinition, RegionCount, VerifyError};
pub use op::{OpName, Operation, Region};
pub use parser::{parse, ParseError};
pub use pass::{
    Pass, PassError, PassInstrumentation, PassManager, PassRegistry, PassReport, PipelineReport,
};
pub use rewrite::{apply_patterns_greedily, Rewrite, RewriteConfig, RewritePattern, RewriteStats};
