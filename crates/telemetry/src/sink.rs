//! Telemetry sinks: human-readable summary, JSON-lines export, and
//! Prometheus text exposition.

use std::fmt::Write as _;

use crate::json::JsonObject;
use crate::metrics::{Metric, MetricsRegistry};
use crate::Telemetry;

pub(crate) fn micros(d: std::time::Duration) -> f64 {
    // Round to nanosecond granularity so exported floats stay compact.
    (d.as_secs_f64() * 1e9).round() / 1e3
}

/// Render a human-readable report: indented span tree, then metrics,
/// then events.
pub fn render_summary(telemetry: &Telemetry) -> String {
    // Merge the shards before taking the span/event lock.
    let metrics = telemetry.merged_metrics();
    let inner = telemetry.lock();
    let mut out = String::new();

    if !inner.spans.is_empty() {
        out.push_str("spans:\n");
        let name_width = inner.spans.iter().map(|s| s.name.len() + 2 * s.depth).max().unwrap_or(0);
        for span in &inner.spans {
            let indent = "  ".repeat(span.depth);
            let label = format!("{indent}{}", span.name);
            let _ = write!(out, "  {label:<name_width$}  {:>10.1} us", micros(span.duration));
            if !span.closed {
                out.push_str("  (open)");
            }
            for (key, value) in &span.attrs {
                let _ = write!(out, "  {key}={value}");
            }
            out.push('\n');
        }
    }

    if !metrics.is_empty() {
        out.push_str("metrics:\n");
        let name_width = metrics.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(total) => {
                    let _ = writeln!(out, "  {name:<name_width$}  counter    {total}");
                }
                Metric::Gauge(value) => {
                    let _ = writeln!(out, "  {name:<name_width$}  gauge      {value}");
                }
                Metric::Histogram(_) => {
                    // Re-borrow through the snapshot API for the derived stats.
                    let h = metrics.histogram(name).expect("histogram exists");
                    let _ = writeln!(
                        out,
                        "  {name:<name_width$}  histogram  count={} min={} mean={:.1} max={}",
                        h.count,
                        h.min,
                        h.mean(),
                        h.max
                    );
                }
            }
        }
    }

    if !inner.events.is_empty() {
        out.push_str("events:\n");
        for (name, attrs) in &inner.events {
            let _ = write!(out, "  {name}");
            for (key, value) in attrs {
                let _ = write!(out, "  {key}={value}");
            }
            out.push('\n');
        }
    }

    if out.is_empty() {
        out.push_str("(no telemetry recorded)\n");
    }
    out
}

/// Render the JSON-lines export: one self-describing object per line, in
/// the order spans → counters/gauges/histograms → events.
pub fn render_jsonl(telemetry: &Telemetry) -> String {
    let metrics = telemetry.merged_metrics();
    let inner = telemetry.lock();
    let mut out = String::new();

    for span in &inner.spans {
        let mut obj = JsonObject::new()
            .field("type", "span")
            .field("name", span.name.as_str())
            .field("start_us", micros(span.start))
            .field("duration_us", micros(span.duration))
            .field("depth", span.depth);
        if !span.closed {
            obj = obj.field("open", true);
        }
        if !span.attrs.is_empty() {
            obj = obj.field_object("attrs", &span.attrs);
        }
        out.push_str(&obj.finish());
        out.push('\n');
    }

    for (name, metric) in metrics.iter() {
        let line = match metric {
            Metric::Counter(total) => JsonObject::new()
                .field("type", "counter")
                .field("name", name)
                .field("value", *total)
                .finish(),
            Metric::Gauge(value) => JsonObject::new()
                .field("type", "gauge")
                .field("name", name)
                .field("value", *value)
                .finish(),
            Metric::Histogram(_) => {
                let h = metrics.histogram(name).expect("histogram exists");
                let mut buckets = String::from("[");
                for (i, count) in h.bucket_counts.iter().enumerate() {
                    if i > 0 {
                        buckets.push(',');
                    }
                    let le =
                        h.bounds.get(i).map_or_else(|| "\"+inf\"".to_owned(), |b| format!("{b:?}"));
                    buckets.push_str(
                        &JsonObject::new().field_raw("le", &le).field("count", *count).finish(),
                    );
                }
                buckets.push(']');
                let mut obj = JsonObject::new()
                    .field("type", "histogram")
                    .field("name", name)
                    .field("count", h.count)
                    .field("sum", h.sum)
                    .field("min", h.min)
                    .field("max", h.max)
                    .field("mean", h.mean())
                    .field_raw("buckets", &buckets);
                if h.exemplars.iter().any(|e| e.is_some()) {
                    let mut exemplars = String::from("[");
                    let mut first = true;
                    for (i, exemplar) in h.exemplars.iter().enumerate() {
                        let Some(exemplar) = exemplar else { continue };
                        if !first {
                            exemplars.push(',');
                        }
                        first = false;
                        let le = h
                            .bounds
                            .get(i)
                            .map_or_else(|| "\"+inf\"".to_owned(), |b| format!("{b:?}"));
                        exemplars.push_str(
                            &JsonObject::new()
                                .field_raw("le", &le)
                                .field("value", exemplar.value)
                                .field("label", exemplar.label.as_str())
                                .finish(),
                        );
                    }
                    exemplars.push(']');
                    obj = obj.field_raw("exemplars", &exemplars);
                }
                obj.finish()
            }
        };
        out.push_str(&line);
        out.push('\n');
    }

    for (name, attrs) in &inner.events {
        let mut obj = JsonObject::new().field("type", "event").field("name", name.as_str());
        if !attrs.is_empty() {
            obj = obj.field_object("attrs", attrs);
        }
        out.push_str(&obj.finish());
        out.push('\n');
    }

    out
}

/// Sanitize a dotted series name into a Prometheus metric name.
fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn prometheus_number(value: f64) -> String {
    if value == f64::INFINITY {
        "+Inf".to_owned()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{value:?}")
    }
}

/// Render the merged metrics in the Prometheus text exposition format
/// (`# TYPE` lines; histograms expand to cumulative `_bucket` series
/// plus `_sum` and `_count`, with OpenMetrics-style exemplars).
pub fn render_prometheus(metrics: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, metric) in metrics.iter() {
        let pname = prometheus_name(name);
        match metric {
            Metric::Counter(total) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {total}");
            }
            Metric::Gauge(value) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {}", prometheus_number(*value));
            }
            Metric::Histogram(_) => {
                let h = metrics.histogram(name).expect("histogram exists");
                let _ = writeln!(out, "# TYPE {pname} histogram");
                let mut cumulative = 0u64;
                for (i, count) in h.bucket_counts.iter().enumerate() {
                    cumulative += count;
                    let le = h
                        .bounds
                        .get(i)
                        .map_or_else(|| "+Inf".to_owned(), |bound| prometheus_number(*bound));
                    let _ = write!(out, "{pname}_bucket{{le=\"{le}\"}} {cumulative}");
                    if let Some(Some(exemplar)) = h.exemplars.get(i) {
                        let _ = write!(
                            out,
                            " # {{request_id=\"{}\"}} {}",
                            crate::escape_json(&exemplar.label),
                            prometheus_number(exemplar.value)
                        );
                    }
                    out.push('\n');
                }
                let _ = writeln!(out, "{pname}_sum {}", prometheus_number(h.sum));
                let _ = writeln!(out, "{pname}_count {}", h.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn histogram_jsonl_has_inf_overflow_bucket() {
        let t = Telemetry::new();
        t.observe_with("h", 2.0, &[1.0, 10.0]);
        let jsonl = t.render_jsonl();
        assert!(jsonl.contains(r#""le":"+inf""#), "{jsonl}");
        assert!(jsonl.contains(r#""le":1.0"#), "{jsonl}");
    }

    #[test]
    fn summary_marks_open_spans() {
        let t = Telemetry::new();
        let _open = t.span("still-running");
        let summary = t.render_summary();
        assert!(summary.contains("(open)"), "{summary}");
    }

    #[test]
    fn empty_collector_renders_placeholder() {
        let t = Telemetry::new();
        assert_eq!(t.render_summary(), "(no telemetry recorded)\n");
        assert_eq!(t.render_jsonl(), "");
    }

    #[test]
    fn exemplars_surface_in_jsonl() {
        let t = Telemetry::new();
        t.observe_with_exemplar("server.latency_ms", 7.5, &[1.0, 10.0], "req-42");
        let jsonl = t.render_jsonl();
        assert!(
            jsonl.contains(r#""exemplars":[{"le":10.0,"value":7.5,"label":"req-42"}]"#),
            "{jsonl}"
        );
    }

    #[test]
    fn prometheus_golden_scrape() {
        let t = Telemetry::new();
        t.counter_add("server.requests", 3);
        t.gauge_set("server.queue_depth", 2.0);
        t.observe_with("server.latency_ms", 0.5, &[1.0, 10.0]);
        t.observe_with("server.latency_ms", 4.0, &[1.0, 10.0]);
        t.observe_with_exemplar("server.latency_ms", 50.0, &[1.0, 10.0], "req-9");
        let scrape = t.render_prometheus();
        let expected = "\
# TYPE server_latency_ms histogram
server_latency_ms_bucket{le=\"1.0\"} 1
server_latency_ms_bucket{le=\"10.0\"} 2
server_latency_ms_bucket{le=\"+Inf\"} 3 # {request_id=\"req-9\"} 50.0
server_latency_ms_sum 54.5
server_latency_ms_count 3
# TYPE server_queue_depth gauge
server_queue_depth 2.0
# TYPE server_requests counter
server_requests 3
";
        assert_eq!(scrape, expected);
    }
}
