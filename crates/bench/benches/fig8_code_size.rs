//! **Figure 8** — average code size (instructions) per suite for the old
//! and new compilers, with and without optimizations.
//!
//! Reproduction target: "the code sizes remain similar for both compilers
//! when optimizations are enabled" — the new compiler's optimizations do
//! not require larger instruction memories.

use cicero_bench::{banner, f2, suites, CompiledSuite, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 8", "average code size per RE (instructions)", scale);
    let mut table =
        Table::new(vec!["suite", "old w/o", "old w/", "new w/o", "new w/", "new/old (w/)"]);
    for bench in suites(scale) {
        let s = CompiledSuite::build(&bench);
        let avg = |programs: &[cicero_isa::Program]| {
            programs.iter().map(|p| p.len() as f64).sum::<f64>() / programs.len() as f64
        };
        let (ou, oo, nu, no) =
            (avg(&s.old_unopt), avg(&s.old_opt), avg(&s.new_unopt), avg(&s.new_opt));
        table.row(vec![s.name.to_owned(), f2(ou), f2(oo), f2(nu), f2(no), f2(no / oo)]);
    }
    table.print();
    println!("\n  expectation: new/old (w/) close to 1.0 — similar instruction-memory needs");
}
