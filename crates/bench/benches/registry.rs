//! **Registry swap under load** — closed-loop `/scan?ruleset=` traffic
//! against the `cicero-server` front door while the ruleset is hot-
//! swapped mid-run, exported to `BENCH_registry.json`.
//!
//! The scenario is the zero-downtime reload contract: `CLIENTS`
//! closed-loop clients hammer `POST /scan?ruleset=live` on keep-alive
//! connections while a swapper thread `PUT`s fresh pattern sets over the
//! same id at fixed points in the run. Three properties are *asserted*,
//! not just measured:
//!
//! * **zero drops** — every scan gets a `200` and the final drain report
//!   accounts for every request (served = sent, nothing rejected);
//! * **zero wrong-version responses** — every response's
//!   `x-cicero-ruleset-version` is a version that was actually installed,
//!   and never one *older* than the newest version whose `PUT` had been
//!   acknowledged before the request was sent (a request admitted after
//!   a swap must be served by the new version);
//! * **per-connection monotonicity** — on one keep-alive connection
//!   requests are serial, so the observed version sequence must follow
//!   install order; a step backwards would mean a retired version served
//!   a fresh request.
//!
//! Each client also counts the swap transitions it directly observes, so
//! the bench fails loudly if the swaps all landed outside the measured
//! window (a vacuous run).
//!
//! Request volume follows `CICERO_BENCH_SCALE`: `quick` 20 000, default
//! 100 000, `full` 1 000 000 (the issue's headline run: at least one
//! million requests with live swaps mid-run). Output path via
//! `CICERO_BENCH_REGISTRY` (empty to disable, default
//! `BENCH_registry.json`).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use cicero_bench::{banner, f2, Scale};
use cicero_runtime::RuntimeOptions;
use cicero_server::{Server, ServerOptions};

/// Concurrent closed-loop scan clients.
const CLIENTS: usize = 4;

/// Live swaps performed while the clients run (plus the initial
/// install, the run sees `SWAPS + 1` distinct versions).
const SWAPS: usize = 8;

/// The ruleset id every request pins.
const RULESET: &str = "live";

fn total_requests(scale: Scale) -> usize {
    match scale.patterns {
        8 => 20_000,      // quick
        200 => 1_000_000, // full: the issue's >= 1M headline run
        _ => 100_000,
    }
}

/// The pattern set for version `i`: a shared member plus one that only
/// version `i` has, so every swap changes the content hash and the
/// matching behavior observably.
fn version_patterns(i: usize) -> Vec<String> {
    vec!["ab|cd".to_owned(), format!("v{i}x+y"), "gh+i".to_owned()]
}

fn json_str_array(items: &[String]) -> String {
    let quoted: Vec<String> =
        items.iter().map(|s| format!("\"{}\"", cicero_telemetry::escape_json(s))).collect();
    format!("[{}]", quoted.join(","))
}

/// Read one keep-alive response; returns the status and the
/// `x-cicero-ruleset-version` header.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Option<String>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("response status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    let mut version = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("response header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line.strip_prefix("content-length: ") {
            content_length = value.parse().expect("content-length value");
        }
        if let Some(value) = line.strip_prefix("x-cicero-ruleset-version: ") {
            version = Some(value.to_owned());
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("response body");
    (status, version)
}

/// One request on an existing keep-alive connection.
fn roundtrip(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Option<String>) {
    let request =
        format!("{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}", body.len());
    writer.write_all(request.as_bytes()).expect("send request");
    read_response(reader)
}

/// Install version `i` over the live id; returns the content version the
/// server reported.
fn put_version(addr: std::net::SocketAddr, i: usize) -> String {
    let stream = TcpStream::connect(addr).expect("connect for put");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let body = format!("{{\"patterns\":{}}}", json_str_array(&version_patterns(i)));
    let (status, version) =
        roundtrip(&mut writer, &mut reader, "PUT", &format!("/rulesets/{RULESET}"), &body);
    assert!(status == 200 || status == 201, "PUT of version {i} must succeed, got {status}");
    version.expect("put response carries the content version")
}

/// What one closed-loop client measured.
struct ClientResult {
    latencies_ms: Vec<f64>,
    /// Swap transitions this connection directly observed.
    transitions: usize,
}

/// One closed-loop client: `count` scans on a single keep-alive
/// connection, validating the version tag of every response against the
/// shared install log.
fn run_client(
    addr: std::net::SocketAddr,
    versions: &RwLock<Vec<String>>,
    count: usize,
    progress: &AtomicUsize,
) -> ClientResult {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let body = r#"{"input":"xxabyy v0x gh"}"#;
    let path = format!("/scan?ruleset={RULESET}");
    let mut latencies_ms = Vec::with_capacity(count);
    let mut last_index = 0usize;
    let mut transitions = 0usize;
    for _ in 0..count {
        // The newest version whose PUT was acknowledged before this
        // request was sent: the response may never be older than it.
        let floor = versions.read().expect("install log").len() - 1;
        let start = Instant::now();
        let (status, version) = roundtrip(&mut writer, &mut reader, "POST", &path, body);
        latencies_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(status, 200, "a scan during a swap must not fail");
        let version = version.expect("every scan response is version-tagged");
        // A scan can see a fresh version before the swapper's PUT ack
        // reaches the log (install happens server-side first); give the
        // log a moment to catch up before calling the version bogus.
        let index = {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                {
                    let log = versions.read().expect("install log");
                    if let Some(i) = log.iter().position(|v| *v == version) {
                        break i;
                    }
                }
                assert!(
                    Instant::now() < deadline,
                    "response version {version} was never installed"
                );
                std::thread::sleep(Duration::from_micros(100));
            }
        };
        assert!(
            index >= floor,
            "wrong-version response: got install #{index} ({version}) after \
             install #{floor} was already acknowledged"
        );
        assert!(
            index >= last_index,
            "version went backwards on one connection: install #{index} after #{last_index}"
        );
        if index != last_index {
            transitions += 1;
            last_index = index;
        }
        progress.fetch_add(1, Ordering::Relaxed);
    }
    ClientResult { latencies_ms, transitions }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[index]
}

fn main() {
    let scale = Scale::from_env();
    banner("Registry", "ruleset hot swaps under closed-loop /scan load", scale);
    let total = total_requests(scale);
    let per_client = total / CLIENTS;

    let server = Server::bind(ServerOptions {
        addr: "127.0.0.1:0".to_owned(),
        workers: CLIENTS,
        queue_depth: 64,
        drain_timeout: Duration::from_millis(10_000),
        runtime: RuntimeOptions { jobs: 1, ..RuntimeOptions::default() },
        ..ServerOptions::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("local addr");
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Version 0 is installed before any client starts; the install log
    // orders every later swap.
    let versions = Arc::new(RwLock::new(vec![put_version(addr, 0)]));
    let progress = Arc::new(AtomicUsize::new(0));

    println!(
        "  {total} scans from {CLIENTS} closed-loop clients, {SWAPS} live swaps \
         spread across the run"
    );

    let run_start = Instant::now();
    let mut clients = Vec::new();
    for _ in 0..CLIENTS {
        let versions = Arc::clone(&versions);
        let progress = Arc::clone(&progress);
        clients
            .push(std::thread::spawn(move || run_client(addr, &versions, per_client, &progress)));
    }

    // The swapper: each swap waits for the run to reach its slice of the
    // request volume, so every swap happens with scans in flight.
    let swapper = {
        let versions = Arc::clone(&versions);
        let progress = Arc::clone(&progress);
        std::thread::spawn(move || {
            for i in 1..=SWAPS {
                let threshold = per_client * CLIENTS * i / (SWAPS + 1);
                while progress.load(Ordering::Relaxed) < threshold {
                    std::thread::sleep(Duration::from_micros(200));
                }
                let version = put_version(addr, i);
                versions.write().expect("install log").push(version);
            }
        })
    };

    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let mut transitions = 0usize;
    for client in clients {
        let result = client.join().expect("client thread");
        latencies.extend(result.latencies_ms);
        transitions += result.transitions;
    }
    swapper.join().expect("swapper thread");
    let run_wall = run_start.elapsed();
    let served = latencies.len();
    assert_eq!(served, per_client * CLIENTS, "every closed-loop scan must be answered");
    let installed = versions.read().expect("install log").clone();
    assert_eq!(installed.len(), SWAPS + 1, "every swap must have been installed");
    assert!(
        transitions >= SWAPS,
        "the {SWAPS} swaps must be visible to the measured traffic \
         (saw only {transitions} transitions)"
    );

    // Graceful drain with full accounting: scans + the initial install +
    // the swaps + the shutdown itself, nothing rejected, nothing lost.
    let drain_requested = Instant::now();
    {
        let stream = TcpStream::connect(addr).expect("connect for shutdown");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);
        let (status, _) = roundtrip(&mut writer, &mut reader, "POST", "/shutdown", "");
        assert_eq!(status, 200, "shutdown must be acknowledged");
    }
    let report = server_thread.join().expect("server thread");
    let drain_wall = drain_requested.elapsed();
    assert!(report.drained, "drain must complete inside the timeout: {report:?}");
    assert_eq!(report.rejected, 0, "a closed loop within capacity never trips admission");
    let expected = served as u64 + SWAPS as u64 + 2; // + initial put + shutdown
    assert_eq!(report.requests, expected, "no request may be dropped during swaps or drain");

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let throughput = served as f64 / run_wall.as_secs_f64();
    let (p50, p90, p99) =
        (percentile(&latencies, 0.50), percentile(&latencies, 0.90), percentile(&latencies, 0.99));
    let max = latencies.last().copied().unwrap_or(0.0);

    println!();
    println!(
        "  throughput   : {} scans/s over {:.2} s ({served} served, {} versions)",
        f2(throughput),
        run_wall.as_secs_f64(),
        installed.len()
    );
    println!(
        "  latency      : p50 {} ms  p90 {} ms  p99 {} ms  max {} ms",
        f2(p50),
        f2(p90),
        f2(p99),
        f2(max)
    );
    println!(
        "  swap safety  : 0 dropped, 0 wrong-version, 0 monotonicity violations \
         ({transitions} observed transitions); drain {:.1} ms",
        report.wall.as_secs_f64() * 1e3
    );

    let path =
        std::env::var("CICERO_BENCH_REGISTRY").unwrap_or_else(|_| "BENCH_registry.json".to_owned());
    if !path.is_empty() {
        let quoted: Vec<String> = installed.iter().map(|v| format!("\"{v}\"")).collect();
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"registry_swap_under_load\",\n");
        let _ = writeln!(json, "  \"requests\": {served},");
        let _ = writeln!(json, "  \"clients\": {CLIENTS},");
        let _ = writeln!(json, "  \"swaps\": {SWAPS},");
        let _ = writeln!(json, "  \"versions\": [{}],", quoted.join(", "));
        json.push_str(
            "  \"notes\": \"closed-loop POST /scan?ruleset=live over keep-alive loopback TCP \
             while a swapper thread PUTs fresh pattern sets over the same id mid-run; asserted: \
             every scan answered 200 (zero drops, drain accounts for every request), every \
             response tagged with an installed version no older than the newest PUT acknowledged \
             before the request was sent, and per-connection version order follows install \
             order\",\n",
        );
        let _ = writeln!(json, "  \"throughput_rps\": {throughput:.1},");
        let _ = writeln!(
            json,
            "  \"latency_ms\": {{\"p50\": {p50:.3}, \"p90\": {p90:.3}, \"p99\": {p99:.3}, \
             \"max\": {max:.3}}},"
        );
        let _ = writeln!(json, "  \"run_seconds\": {:.3},", run_wall.as_secs_f64());
        let _ = writeln!(json, "  \"observed_transitions\": {transitions},");
        let _ = writeln!(json, "  \"dropped\": 0,");
        let _ = writeln!(json, "  \"wrong_version\": 0,");
        let _ = writeln!(json, "  \"monotonicity_violations\": 0,");
        let _ = writeln!(json, "  \"drained\": {},", report.drained);
        let _ = writeln!(json, "  \"drain_ms\": {:.1},", drain_wall.as_secs_f64() * 1e3);
        let _ = writeln!(json, "  \"served_total\": {},", report.requests);
        let _ = writeln!(json, "  \"rejected_at_admission\": {}", report.rejected);
        json.push_str("}\n");
        match std::fs::write(&path, json) {
            Ok(()) => println!("\n  results written to {path}"),
            Err(e) => eprintln!("  warning: could not write {path}: {e}"),
        }
    }
}
