//! The streaming scan session: a reader thread feeding a resumable
//! [`StreamMachine`] through a *bounded* chunk queue.
//!
//! The queue is a [`std::sync::mpsc::sync_channel`] of depth
//! [`StreamOptions::queue_depth`], so a slow pattern exerts backpressure
//! on the reader instead of letting chunks pile up in memory: total
//! resident input is `O(chunk_size × queue_depth + window)` no matter how
//! large the input or how pathological the pattern. Budgets from
//! [`Budget`] apply per session — fuel bounds simulated cycles, the
//! deadline bounds wall-clock time — and both conclude the session with a
//! clean [`MatchOutcome::Budget`] instead of a hang.

use std::io::{self, Read};
use std::time::{Duration, Instant};

use cicero_core::{Backend, CompileError};
use cicero_isa::Program;
use cicero_sim::{ArchConfig, StreamMachine, StreamStatus};
use cicero_telemetry::TraceSpan;

use crate::budget::{Budget, BudgetKind, MatchOutcome};
use crate::{host_exec_report, HostRun, Runtime};

/// Knobs for one streaming session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Bytes per chunk read from the source (must be ≥ 1).
    pub chunk_size: usize,
    /// Chunks the reader may buffer ahead of the matcher (must be ≥ 1);
    /// this is the backpressure bound.
    pub queue_depth: usize,
    /// Resource budget for the session.
    pub budget: Budget,
}

impl Default for StreamOptions {
    fn default() -> StreamOptions {
        StreamOptions { chunk_size: 64 * 1024, queue_depth: 4, budget: Budget::UNLIMITED }
    }
}

/// Why a streaming session could not run.
#[derive(Debug)]
pub enum StreamError {
    /// The pattern failed to compile.
    Compile(CompileError),
    /// The input source failed mid-stream.
    Io(io::Error),
    /// Rejected options (zero chunk size or queue depth).
    Options(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Compile(e) => write!(f, "compiling pattern: {e}"),
            StreamError::Io(e) => write!(f, "reading input: {e}"),
            StreamError::Options(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {}

/// The result of one streaming session.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// The verdict (or budget cut-off) with its [`ExecReport`].
    ///
    /// [`ExecReport`]: cicero_sim::ExecReport
    pub outcome: MatchOutcome,
    /// Input bytes fed to the matcher (on early acceptance, less than the
    /// source length).
    pub bytes: u64,
    /// Chunks fed to the matcher.
    pub chunks: u64,
    /// Times the machine suspended at a chunk boundary.
    pub suspends: u64,
    /// Memory high-water mark of the sliding input buffer, in bytes.
    pub peak_buffered: usize,
    /// Wall-clock duration of the session.
    pub wall: Duration,
}

/// Read until `buf` is full or the source is exhausted.
fn read_chunk<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

impl Runtime {
    /// Compile `pattern` (through the cache) and scan `reader` streaming.
    ///
    /// # Errors
    ///
    /// [`StreamError::Compile`], or see [`Runtime::scan_stream`].
    pub fn match_stream<R: Read + Send>(
        &self,
        pattern: &str,
        reader: R,
        config: &ArchConfig,
        options: &StreamOptions,
    ) -> Result<StreamReport, StreamError> {
        let program = self.compile(pattern).map_err(StreamError::Compile)?;
        self.scan_stream(&program, reader, config, options)
    }

    /// Scan `reader` with an already-compiled program, chunk by chunk, in
    /// bounded memory. The verdict is byte-identical to simulating the
    /// whole input at once (chunk-split invariance), except that a budget
    /// may conclude the session early with [`MatchOutcome::Budget`].
    ///
    /// # Errors
    ///
    /// [`StreamError::Options`] for a zero chunk size or queue depth;
    /// [`StreamError::Io`] when the source fails mid-stream.
    pub fn scan_stream<R: Read + Send>(
        &self,
        program: &Program,
        reader: R,
        config: &ArchConfig,
        options: &StreamOptions,
    ) -> Result<StreamReport, StreamError> {
        self.scan_stream_traced(program, reader, config, options, None)
    }

    /// [`Runtime::scan_stream`] with request tracing: the whole session
    /// runs under a `stream.execute` child span annotated with byte,
    /// chunk, and suspend totals.
    ///
    /// # Errors
    ///
    /// See [`Runtime::scan_stream`].
    pub fn scan_stream_traced<R: Read + Send>(
        &self,
        program: &Program,
        reader: R,
        config: &ArchConfig,
        options: &StreamOptions,
        trace: Option<&TraceSpan>,
    ) -> Result<StreamReport, StreamError> {
        self.scan_stream_traced_on(self.backend(), program, reader, config, options, trace)
    }

    /// [`Runtime::scan_stream_traced`] on an explicit backend. On
    /// [`Backend::Host`] the session feeds a resumable
    /// [`HostMatcher`](crate::HostProgram::matcher) instead of the
    /// [`StreamMachine`]: the verdict is still chunk-split invariant, the
    /// fuel budget becomes a byte budget, and the reported
    /// [`ExecReport`] follows the host synthesis convention
    /// (`cycles` = bytes examined).
    ///
    /// # Errors
    ///
    /// See [`Runtime::scan_stream`].
    pub fn scan_stream_traced_on<R: Read + Send>(
        &self,
        backend: Backend,
        program: &Program,
        mut reader: R,
        config: &ArchConfig,
        options: &StreamOptions,
        trace: Option<&TraceSpan>,
    ) -> Result<StreamReport, StreamError> {
        if options.chunk_size == 0 {
            return Err(StreamError::Options("chunk size must be at least 1 byte".to_owned()));
        }
        if options.queue_depth == 0 {
            return Err(StreamError::Options("queue depth must be at least 1 chunk".to_owned()));
        }
        let span = self.telemetry.as_ref().map(|t| {
            let span = t.span("stream.session");
            span.annotate("chunk_size", options.chunk_size);
            span.annotate("queue_depth", options.queue_depth);
            span.annotate("backend", backend.to_string());
            span
        });
        let trace_span = trace.map(|parent| {
            let span = parent.child("stream.execute");
            span.annotate("chunk_size", options.chunk_size);
            span.annotate("queue_depth", options.queue_depth);
            span.annotate("backend", backend.to_string());
            span
        });
        if backend == Backend::Host {
            return self.scan_stream_host(program, reader, config, options, span, trace_span);
        }
        let start = Instant::now();
        let deadline_at = options.budget.deadline.map(|d| start + d);
        let mut stream = StreamMachine::new(program, options.budget.clamp_config(config));
        if let Some(telemetry) = &self.telemetry {
            stream.attach_telemetry(telemetry.clone());
        }

        let chunk_size = options.chunk_size;
        let mut bytes = 0u64;
        let mut io_error: Option<io::Error> = None;
        let mut deadline_hit = false;
        let (tx, rx) = std::sync::mpsc::sync_channel::<io::Result<Vec<u8>>>(options.queue_depth);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                loop {
                    let mut buf = vec![0u8; chunk_size];
                    match read_chunk(&mut reader, &mut buf) {
                        Ok(0) => break,
                        Ok(n) => {
                            buf.truncate(n);
                            // A send error means the matcher concluded
                            // early and dropped the queue.
                            if tx.send(Ok(buf)).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            let _ = tx.send(Err(e));
                            break;
                        }
                    }
                }
            });
            while let Ok(message) = rx.recv() {
                match message {
                    Ok(chunk) => {
                        if deadline_at.is_some_and(|at| Instant::now() >= at) {
                            deadline_hit = true;
                            break;
                        }
                        bytes += chunk.len() as u64;
                        if stream.feed(&chunk) == StreamStatus::Complete {
                            break;
                        }
                    }
                    Err(e) => {
                        io_error = Some(e);
                        break;
                    }
                }
            }
            // Dropping the receiver unblocks a reader stuck on a full
            // queue, so the scope can join.
            drop(rx);
        });
        if let Some(e) = io_error {
            return Err(StreamError::Io(e));
        }

        let outcome = if deadline_hit {
            MatchOutcome::Budget { kind: BudgetKind::Deadline, partial: Some(stream.abandon()) }
        } else {
            options.budget.classify(stream.finish(), config)
        };
        let report = StreamReport {
            outcome,
            bytes,
            chunks: stream.chunks(),
            suspends: stream.suspends(),
            peak_buffered: stream.peak_resident(),
            wall: start.elapsed(),
        };
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add("stream.sessions", 1);
            telemetry.counter_add("stream.chunks", report.chunks);
            telemetry.counter_add("stream.bytes", report.bytes);
            telemetry.counter_add("stream.suspends", report.suspends);
            telemetry.observe("stream.peak_buffered", report.peak_buffered as f64);
            if matches!(report.outcome, MatchOutcome::Budget { .. }) {
                telemetry.counter_add("stream.budget_exceeded", 1);
            }
            if let Some(span) = span {
                span.annotate("bytes", report.bytes);
                span.annotate("complete", report.outcome.is_complete());
            }
        }
        if let Some(span) = trace_span {
            span.annotate("bytes", report.bytes);
            span.annotate("chunks", report.chunks);
            span.annotate("suspends", report.suspends);
            span.annotate("complete", report.outcome.is_complete());
        }
        Ok(report)
    }

    /// The host-backend streaming session: the same bounded reader queue,
    /// feeding a resumable host matcher instead of the stream machine.
    /// The fuel budget clamps the session's byte count exactly as it
    /// clamps simulated cycles on the sim path (`cycles` = bytes in the
    /// host report convention), and the verdict is chunk-split invariant
    /// because the matcher state is one machine word (or one DFA id).
    fn scan_stream_host<R: Read + Send>(
        &self,
        program: &Program,
        mut reader: R,
        config: &ArchConfig,
        options: &StreamOptions,
        span: Option<cicero_telemetry::Span>,
        trace_span: Option<TraceSpan>,
    ) -> Result<StreamReport, StreamError> {
        let start = Instant::now();
        let deadline_at = options.budget.deadline.map(|d| start + d);
        let byte_cap = options.budget.clamp_config(config).max_cycles;
        let host = self.host.get_or_lower(program);
        let mut matcher = host.matcher();

        let chunk_size = options.chunk_size;
        let mut bytes = 0u64;
        let mut chunks = 0u64;
        let mut suspends = 0u64;
        let mut peak_buffered = 0usize;
        let mut io_error: Option<io::Error> = None;
        let mut deadline_hit = false;
        let mut limit_hit = false;
        let mut concluded: Option<crate::HostOutcome> = None;
        let (tx, rx) = std::sync::mpsc::sync_channel::<io::Result<Vec<u8>>>(options.queue_depth);
        std::thread::scope(|scope| {
            scope.spawn(move || loop {
                let mut buf = vec![0u8; chunk_size];
                match read_chunk(&mut reader, &mut buf) {
                    Ok(0) => break,
                    Ok(n) => {
                        buf.truncate(n);
                        if tx.send(Ok(buf)).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            });
            while let Ok(message) = rx.recv() {
                match message {
                    Ok(chunk) => {
                        if deadline_at.is_some_and(|at| Instant::now() >= at) {
                            deadline_hit = true;
                            break;
                        }
                        peak_buffered = peak_buffered.max(chunk.len());
                        chunks += 1;
                        let remaining = byte_cap.saturating_sub(matcher.position() as u64);
                        let take = (chunk.len() as u64).min(remaining) as usize;
                        bytes += take as u64;
                        if let Some(outcome) = matcher.feed(&chunk[..take]) {
                            concluded = Some(outcome);
                            break;
                        }
                        if take < chunk.len() {
                            limit_hit = true;
                            break;
                        }
                        suspends += 1;
                    }
                    Err(e) => {
                        io_error = Some(e);
                        break;
                    }
                }
            }
            drop(rx);
        });
        if let Some(e) = io_error {
            return Err(StreamError::Io(e));
        }

        let outcome = if deadline_hit {
            let partial = HostRun {
                outcome: crate::HostOutcome {
                    accepted: false,
                    match_position: None,
                    matched_id: None,
                },
                scanned: matcher.position() as u64,
                hit_byte_limit: false,
            };
            MatchOutcome::Budget {
                kind: BudgetKind::Deadline,
                partial: Some(host_exec_report(&partial)),
            }
        } else {
            let final_outcome = match concluded {
                Some(outcome) => outcome,
                None if limit_hit => {
                    crate::HostOutcome { accepted: false, match_position: None, matched_id: None }
                }
                None => matcher.finish(),
            };
            let run = HostRun {
                outcome: final_outcome,
                scanned: matcher.position() as u64,
                hit_byte_limit: limit_hit,
            };
            options.budget.classify(host_exec_report(&run), config)
        };
        let report =
            StreamReport { outcome, bytes, chunks, suspends, peak_buffered, wall: start.elapsed() };
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add("stream.sessions", 1);
            telemetry.counter_add("stream.chunks", report.chunks);
            telemetry.counter_add("stream.bytes", report.bytes);
            telemetry.counter_add("stream.suspends", report.suspends);
            telemetry.observe("stream.peak_buffered", report.peak_buffered as f64);
            if matches!(report.outcome, MatchOutcome::Budget { .. }) {
                telemetry.counter_add("stream.budget_exceeded", 1);
            }
            if let Some(exec) = report.outcome.report() {
                exec.record_into(telemetry);
            }
            if let Some(span) = span {
                span.annotate("bytes", report.bytes);
                span.annotate("complete", report.outcome.is_complete());
            }
        }
        if let Some(span) = trace_span {
            span.annotate("bytes", report.bytes);
            span.annotate("chunks", report.chunks);
            span.annotate("suspends", report.suspends);
            span.annotate("complete", report.outcome.is_complete());
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use std::io::Cursor;

    use cicero_sim::simulate;
    use cicero_telemetry::Telemetry;

    use super::*;
    use crate::RuntimeOptions;

    fn runtime() -> Runtime {
        Runtime::new(RuntimeOptions { jobs: 1, ..RuntimeOptions::default() })
    }

    fn options(chunk_size: usize) -> StreamOptions {
        StreamOptions { chunk_size, ..StreamOptions::default() }
    }

    #[test]
    fn streamed_scan_equals_whole_input_simulation() {
        let runtime = runtime();
        let config = ArchConfig::new_organization(8, 1);
        let program = runtime.compile("ab|cd").unwrap();
        let mut input = vec![b'x'; 10_000];
        input.extend_from_slice(b"cd");
        input.extend(vec![b'y'; 100]);
        let whole = simulate(&program, &input, &config);
        for chunk_size in [1usize, 7, 256, 100_000] {
            let report = runtime
                .scan_stream(&program, Cursor::new(input.clone()), &config, &options(chunk_size))
                .unwrap();
            assert_eq!(report.outcome, MatchOutcome::Complete(whole), "chunk={chunk_size}");
        }
    }

    #[test]
    fn acceptance_stops_reading_the_source_early() {
        let runtime = runtime();
        let config = ArchConfig::old_organization(1);
        let mut input = b"xxabxx".to_vec();
        input.extend(vec![b'z'; 1 << 20]);
        let report = runtime.match_stream("ab", Cursor::new(input), &config, &options(64)).unwrap();
        assert!(report.outcome.is_complete());
        assert!(report.outcome.report().unwrap().accepted);
        assert!(
            report.bytes < 1024,
            "the session should stop near the match, read {} bytes",
            report.bytes
        );
    }

    #[test]
    fn peak_buffer_stays_within_chunk_and_window() {
        let runtime = runtime();
        let config = ArchConfig::new_organization(8, 1);
        let chunk = 512usize;
        let input = vec![b'q'; 64 * 1024];
        let report =
            runtime.match_stream("ab|cd", Cursor::new(input), &config, &options(chunk)).unwrap();
        assert!(report.outcome.is_complete());
        assert!(
            report.peak_buffered <= chunk + config.window(),
            "peak {} exceeds chunk + window",
            report.peak_buffered
        );
        assert!(report.suspends > 0);
    }

    #[test]
    fn zero_chunk_size_and_queue_depth_are_rejected() {
        let runtime = runtime();
        let config = ArchConfig::old_organization(1);
        let err = runtime
            .match_stream("ab", Cursor::new(b"x".to_vec()), &config, &options(0))
            .unwrap_err();
        assert!(matches!(&err, StreamError::Options(m) if m.contains("chunk size")), "{err}");
        let bad_queue = StreamOptions { queue_depth: 0, ..StreamOptions::default() };
        let err = runtime
            .match_stream("ab", Cursor::new(b"x".to_vec()), &config, &bad_queue)
            .unwrap_err();
        assert!(matches!(&err, StreamError::Options(m) if m.contains("queue depth")), "{err}");
    }

    #[test]
    fn io_errors_surface_mid_stream() {
        struct FailingReader(usize);
        impl Read for FailingReader {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::other("disk on fire"));
                }
                let n = self.0.min(buf.len());
                self.0 -= n;
                buf[..n].fill(b'x');
                Ok(n)
            }
        }
        let runtime = runtime();
        let config = ArchConfig::old_organization(1);
        let err =
            runtime.match_stream("ab", FailingReader(2048), &config, &options(256)).unwrap_err();
        assert!(matches!(&err, StreamError::Io(e) if e.to_string().contains("disk on fire")));
    }

    #[test]
    fn fuel_cuts_off_a_streaming_session() {
        let runtime = runtime();
        let config = ArchConfig::old_organization(1);
        let opts = StreamOptions { budget: Budget::with_fuel(16), ..options(64) };
        let report =
            runtime.match_stream("ab|cd", Cursor::new(vec![b'x'; 4096]), &config, &opts).unwrap();
        match report.outcome {
            MatchOutcome::Budget { kind: BudgetKind::Fuel, partial: Some(partial) } => {
                assert_eq!(partial.cycles, 16);
            }
            other => panic!("expected a fuel cut-off, got {other:?}"),
        }
    }

    #[test]
    fn an_expired_deadline_concludes_with_partial_progress() {
        let runtime = runtime();
        let config = ArchConfig::old_organization(1);
        let opts = StreamOptions { budget: Budget::with_deadline(Duration::ZERO), ..options(64) };
        let report =
            runtime.match_stream("ab|cd", Cursor::new(vec![b'x'; 4096]), &config, &opts).unwrap();
        assert!(
            matches!(report.outcome, MatchOutcome::Budget { kind: BudgetKind::Deadline, .. }),
            "{:?}",
            report.outcome
        );
    }

    #[test]
    fn stream_telemetry_is_recorded() {
        let telemetry = Telemetry::new();
        let runtime = Runtime::new(RuntimeOptions { jobs: 1, ..RuntimeOptions::default() })
            .with_telemetry(telemetry.clone());
        let config = ArchConfig::old_organization(1);
        let report = runtime
            .match_stream("ab|cd", Cursor::new(vec![b'x'; 2048]), &config, &options(256))
            .unwrap();
        assert_eq!(telemetry.counter("stream.sessions"), 1);
        assert_eq!(telemetry.counter("stream.chunks"), report.chunks);
        assert_eq!(telemetry.counter("stream.bytes"), 2048);
        assert!(telemetry.histogram("stream.peak_buffered").is_some());
        // The concluded run folds into the sim.* series like batch runs do.
        assert_eq!(telemetry.counter("sim.runs"), 1);
        let spans = telemetry.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "stream.session").count(), 1);
    }

    fn host_runtime() -> Runtime {
        let compiler =
            cicero_core::CompilerOptions::optimized().with_backend(cicero_core::Backend::Host);
        Runtime::new(RuntimeOptions { jobs: 1, compiler, ..RuntimeOptions::default() })
    }

    #[test]
    fn host_streamed_scan_is_chunk_split_invariant() {
        let runtime = host_runtime();
        let config = ArchConfig::new_organization(8, 1);
        let program = runtime.compile("ab|cd").unwrap();
        let mut input = vec![b'x'; 10_000];
        input.extend_from_slice(b"cd");
        input.extend(vec![b'y'; 100]);
        let host = runtime.host_program(&program);
        let whole = host.run(&input);
        for chunk_size in [1usize, 7, 256, 100_000] {
            let report = runtime
                .scan_stream(&program, Cursor::new(input.clone()), &config, &options(chunk_size))
                .unwrap();
            let exec = report.outcome.report().expect("complete");
            assert!(report.outcome.is_complete(), "chunk={chunk_size}");
            assert_eq!(exec.accepted, whole.accepted, "chunk={chunk_size}");
            assert_eq!(exec.match_position, whole.match_position, "chunk={chunk_size}");
            // And the host verdict equals the interpreter oracle.
            let oracle = cicero_isa::run(&program, &input);
            assert_eq!(exec.accepted, oracle.accepted);
            assert_eq!(exec.match_position, oracle.match_position);
        }
    }

    #[test]
    fn host_stream_fuel_cuts_off_by_bytes() {
        let runtime = host_runtime();
        let config = ArchConfig::old_organization(1);
        let opts = StreamOptions { budget: Budget::with_fuel(16), ..options(64) };
        let report =
            runtime.match_stream("ab|cd", Cursor::new(vec![b'x'; 4096]), &config, &opts).unwrap();
        match report.outcome {
            MatchOutcome::Budget { kind: BudgetKind::Fuel, partial: Some(partial) } => {
                assert_eq!(partial.cycles, 16, "host fuel is a byte budget");
            }
            other => panic!("expected a fuel cut-off, got {other:?}"),
        }
    }

    #[test]
    fn host_stream_stops_reading_early_on_acceptance() {
        let runtime = host_runtime();
        let config = ArchConfig::old_organization(1);
        let mut input = b"xxabxx".to_vec();
        input.extend(vec![b'z'; 1 << 20]);
        let report = runtime.match_stream("ab", Cursor::new(input), &config, &options(64)).unwrap();
        assert!(report.outcome.is_complete());
        assert!(report.outcome.report().unwrap().accepted);
        assert!(report.bytes < 1024, "read {} bytes", report.bytes);
    }

    #[test]
    fn empty_sources_stream_cleanly() {
        let runtime = runtime();
        let config = ArchConfig::old_organization(1);
        let program = runtime.compile("a").unwrap();
        let report =
            runtime.scan_stream(&program, Cursor::new(Vec::new()), &config, &options(64)).unwrap();
        assert_eq!(report.bytes, 0);
        assert_eq!(report.outcome, MatchOutcome::Complete(simulate(&program, b"", &config)));
    }
}
