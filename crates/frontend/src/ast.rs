//! The regular-expression abstract syntax tree.
//!
//! The shape intentionally mirrors the `regex` dialect's operation nesting
//! (Table 3 of the paper): a root with prefix/suffix flags, alternated
//! concatenations, pieces wrapping an atom with an optional quantifier.

use std::fmt;

/// A byte range into the original pattern text, for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Construct a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

/// A parsed regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexAst {
    /// True unless the pattern starts with `^`: an implicit `.*` precedes
    /// the pattern (maps to `RootOp`'s `hasPrefix`).
    pub has_prefix: bool,
    /// True unless the pattern ends with `$`: an implicit `.*` follows the
    /// pattern (maps to `RootOp`'s `hasSuffix`).
    pub has_suffix: bool,
    /// The top-level alternation.
    pub alternation: Alternation,
}

/// One or more concatenations separated by `|`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alternation {
    /// The alternatives, in source order. Never empty.
    pub alternatives: Vec<Concatenation>,
    /// Source span.
    pub span: Span,
}

/// A (possibly empty) sequence of pieces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Concatenation {
    /// The pieces, in source order.
    pub pieces: Vec<Piece>,
    /// Source span.
    pub span: Span,
}

/// An atom with an optional quantifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Piece {
    /// The quantified atom.
    pub atom: Atom,
    /// The quantifier, if present.
    pub quantifier: Option<Quantifier>,
    /// Source span.
    pub span: Span,
}

impl Piece {
    /// An unquantified piece.
    pub fn bare(atom: Atom, span: Span) -> Piece {
        Piece { atom, quantifier: None, span }
    }
}

/// Repetition bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quantifier {
    /// Minimum repetitions.
    pub min: u32,
    /// Maximum repetitions; `None` means unbounded (`*`, `+`, `{m,}`).
    pub max: Option<u32>,
}

impl Quantifier {
    /// `*` — zero or more.
    pub const STAR: Quantifier = Quantifier { min: 0, max: None };
    /// `+` — one or more.
    pub const PLUS: Quantifier = Quantifier { min: 1, max: None };
    /// `?` — zero or one.
    pub const OPT: Quantifier = Quantifier { min: 0, max: Some(1) };

    /// `{min,max}` with validation left to the parser.
    pub fn range(min: u32, max: Option<u32>) -> Quantifier {
        Quantifier { min, max }
    }

    /// Whether this is exactly `{1,1}` (equivalent to no quantifier).
    pub fn is_one(&self) -> bool {
        self.min == 1 && self.max == Some(1)
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min, self.max) {
            (0, None) => write!(f, "*"),
            (1, None) => write!(f, "+"),
            (0, Some(1)) => write!(f, "?"),
            (m, None) => write!(f, "{{{m},}}"),
            (m, Some(n)) if m == n => write!(f, "{{{m}}}"),
            (m, Some(n)) => write!(f, "{{{m},{n}}}"),
        }
    }
}

/// A 256-entry character membership set (the `GroupOp` bitmap).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ClassSet {
    bits: [u64; 4],
}

impl ClassSet {
    /// The empty set.
    pub fn empty() -> ClassSet {
        ClassSet { bits: [0; 4] }
    }

    /// A set containing exactly the given bytes.
    pub fn of(bytes: &[u8]) -> ClassSet {
        let mut s = ClassSet::empty();
        for b in bytes {
            s.insert(*b);
        }
        s
    }

    /// Insert one byte.
    pub fn insert(&mut self, byte: u8) {
        self.bits[usize::from(byte >> 6)] |= 1u64 << (byte & 63);
    }

    /// Insert the inclusive range `lo..=hi`.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Membership test.
    pub fn contains(&self, byte: u8) -> bool {
        self.bits[usize::from(byte >> 6)] & (1u64 << (byte & 63)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no byte is a member.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Iterate over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..=255u8).filter(|b| self.contains(*b))
    }

    /// The complement set.
    pub fn complement(&self) -> ClassSet {
        ClassSet { bits: [!self.bits[0], !self.bits[1], !self.bits[2], !self.bits[3]] }
    }

    /// Expand to the 256-entry boolean bitmap used by `GroupOp`.
    pub fn to_bool_array(&self) -> Vec<bool> {
        (0..=255u8).map(|b| self.contains(b)).collect()
    }

    /// Build from a 256-entry boolean bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `bits` does not have exactly 256 entries.
    pub fn from_bool_array(bits: &[bool]) -> ClassSet {
        assert_eq!(bits.len(), 256, "GroupOp bitmap must have 256 entries");
        let mut s = ClassSet::empty();
        for (i, b) in bits.iter().enumerate() {
            if *b {
                s.insert(i as u8);
            }
        }
        s
    }
}

impl fmt::Debug for ClassSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassSet[")?;
        let mut first = true;
        for b in self.iter().take(16) {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 16 {
            write!(f, " …+{}", self.len() - 16)?;
        }
        write!(f, "]")
    }
}

/// The leaf constructs of a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// A literal byte.
    Char(u8),
    /// `.` — any byte.
    Any,
    /// A character class `[...]` / `[^...]`. `negated` is kept (rather than
    /// pre-complementing the set) because negated groups lower differently
    /// (`NotMatchCharOp` chains, §3.3).
    Class {
        /// Whether the class was written negated (`[^...]`).
        negated: bool,
        /// The (un-complemented) member set as written.
        set: ClassSet,
    },
    /// A parenthesized sub-expression (maps to `SubRegexOp`).
    Group(Box<Alternation>),
}

impl RegexAst {
    /// Render back to pattern text. Parsing the result yields an equal AST
    /// (property-tested); this powers `--emit=canonical-regex` style
    /// tooling and test shrinking.
    pub fn to_pattern(&self) -> String {
        let mut out = String::new();
        if !self.has_prefix {
            out.push('^');
        }
        write_alternation(&self.alternation, &mut out);
        if !self.has_suffix {
            out.push('$');
        }
        out
    }
}

fn write_alternation(alt: &Alternation, out: &mut String) {
    for (i, concat) in alt.alternatives.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        for piece in &concat.pieces {
            write_piece(piece, out);
        }
    }
}

fn write_piece(piece: &Piece, out: &mut String) {
    match &piece.atom {
        Atom::Char(c) => out.push_str(&escape_literal(*c)),
        Atom::Any => out.push('.'),
        Atom::Class { negated, set } => {
            out.push('[');
            if *negated {
                out.push('^');
            }
            for b in set.iter() {
                out.push_str(&escape_class_member(b));
            }
            out.push(']');
        }
        Atom::Group(alt) => {
            out.push('(');
            write_alternation(alt, out);
            out.push(')');
        }
    }
    if let Some(q) = &piece.quantifier {
        out.push_str(&q.to_string());
    }
}

/// Characters that must be escaped outside classes.
pub(crate) const METACHARS: &[u8] = b".*+?()[]{}|^$\\";

fn escape_literal(c: u8) -> String {
    if METACHARS.contains(&c) {
        format!("\\{}", c as char)
    } else if c.is_ascii_graphic() || c == b' ' {
        (c as char).to_string()
    } else {
        format!("\\x{c:02x}")
    }
}

fn escape_class_member(c: u8) -> String {
    match c {
        b']' | b'\\' | b'^' | b'-' => format!("\\{}", c as char),
        c if c.is_ascii_graphic() || c == b' ' => (c as char).to_string(),
        c => format!("\\x{c:02x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_set_basics() {
        let mut s = ClassSet::empty();
        assert!(s.is_empty());
        s.insert(b'a');
        s.insert_range(b'x', b'z');
        assert!(s.contains(b'a'));
        assert!(s.contains(b'y'));
        assert!(!s.contains(b'b'));
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![b'a', b'x', b'y', b'z']);
    }

    #[test]
    fn class_set_complement() {
        let s = ClassSet::of(b"ab");
        let c = s.complement();
        assert!(!c.contains(b'a'));
        assert!(c.contains(b'c'));
        assert_eq!(c.len(), 254);
    }

    #[test]
    fn class_set_bitmap_roundtrip() {
        let s = ClassSet::of(b"ac");
        let bits = s.to_bool_array();
        assert_eq!(bits.len(), 256);
        assert!(bits[b'a' as usize]);
        assert!(!bits[b'b' as usize]);
        assert!(bits[b'c' as usize]);
        assert_eq!(ClassSet::from_bool_array(&bits), s);
    }

    #[test]
    fn quantifier_display() {
        assert_eq!(Quantifier::STAR.to_string(), "*");
        assert_eq!(Quantifier::PLUS.to_string(), "+");
        assert_eq!(Quantifier::OPT.to_string(), "?");
        assert_eq!(Quantifier::range(3, Some(6)).to_string(), "{3,6}");
        assert_eq!(Quantifier::range(4, Some(4)).to_string(), "{4}");
        assert_eq!(Quantifier::range(2, None).to_string(), "{2,}");
    }

    #[test]
    fn span_merge() {
        assert_eq!(Span::new(2, 5).merge(Span::new(4, 9)), Span::new(2, 9));
    }
}
