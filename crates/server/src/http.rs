//! Minimal HTTP/1.1 framing: request parsing and response writing over a
//! raw byte stream. Implements exactly what the serving API needs —
//! request line + headers + `Content-Length` or chunked
//! transfer-encoding bodies, keep-alive, and explicit
//! `Connection: close` — with hard caps on header and body sizes so a
//! misbehaving client cannot make the server buffer unbounded input.

use std::io::{self, Read, Write};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum request body bytes (`Content-Length` above this is rejected
/// with `413` before any body byte is read).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Raw query string (empty when absent).
    pub query: String,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request.
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The value of a `k=v` query parameter.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The connection closed cleanly before a request started.
    Eof,
    /// The socket read timed out before a request started (idle
    /// keep-alive); the caller decides whether to keep waiting.
    IdleTimeout,
    /// A transport error.
    Io(io::Error),
    /// The bytes were not a parseable HTTP/1.1 request. The server
    /// answers `400` with this message.
    Malformed(String),
    /// The head or declared body exceeds the hard caps. The server
    /// answers `413`.
    TooLarge(String),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Eof => write!(f, "connection closed"),
            ReadError::IdleTimeout => write!(f, "idle timeout"),
            ReadError::Io(e) => write!(f, "transport error: {e}"),
            ReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            ReadError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Read one request from `stream`.
///
/// A timeout *before the first byte* surfaces as [`ReadError::IdleTimeout`]
/// so keep-alive loops can poll their shutdown flag; a timeout *mid-head*
/// or mid-body is an I/O error (the client stalled inside a request).
///
/// # Errors
///
/// See [`ReadError`].
pub fn read_request<S: Read>(stream: &mut S) -> Result<Request, ReadError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: request heads are small, and this
    // never over-reads into the next pipelined request.
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(if head.is_empty() {
                    ReadError::Eof
                } else {
                    ReadError::Malformed("connection closed mid-request".to_owned())
                });
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) && head.is_empty() => return Err(ReadError::IdleTimeout),
            Err(e) => return Err(ReadError::Io(e)),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(ReadError::TooLarge(format!("request head exceeds {MAX_HEAD_BYTES} B")));
        }
    }

    let head_text = String::from_utf8_lossy(&head);
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(ReadError::Malformed(format!("bad request line {request_line:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!("unsupported protocol {version:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target.to_owned(), String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut body = Vec::new();
    let content_length = headers.iter().find(|(n, _)| n == "content-length").map(|(_, v)| v);
    let transfer_encoding = headers.iter().find(|(n, _)| n == "transfer-encoding").map(|(_, v)| v);
    match (transfer_encoding, content_length) {
        // RFC 9112 §6.1: a message with both is a smuggling vector;
        // reject rather than pick one.
        (Some(_), Some(_)) => {
            return Err(ReadError::Malformed(
                "both transfer-encoding and content-length present".to_owned(),
            ));
        }
        (Some(encoding), None) => {
            if !encoding.eq_ignore_ascii_case("chunked") {
                return Err(ReadError::Malformed(format!(
                    "unsupported transfer-encoding {encoding:?}"
                )));
            }
            body = read_chunked_body(stream)?;
        }
        (None, Some(value)) => {
            let length: usize = value
                .parse()
                .map_err(|_| ReadError::Malformed(format!("bad content-length {value:?}")))?;
            if length > MAX_BODY_BYTES {
                return Err(ReadError::TooLarge(format!(
                    "declared body of {length} B exceeds {MAX_BODY_BYTES} B"
                )));
            }
            body.resize(length, 0);
            let mut filled = 0;
            while filled < length {
                match stream.read(&mut body[filled..]) {
                    Ok(0) => {
                        return Err(ReadError::Malformed("connection closed mid-body".to_owned()))
                    }
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(ReadError::Io(e)),
                }
            }
        }
        (None, None) => {}
    }

    Ok(Request { method: method.to_ascii_uppercase(), path, query, headers, body })
}

/// One CRLF-terminated line of chunked-body framing (size lines,
/// trailers). The terminator is stripped.
fn read_framing_line<S: Read>(stream: &mut S) -> Result<String, ReadError> {
    let mut line = Vec::with_capacity(16);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(ReadError::Malformed("connection closed mid-chunked-body".to_owned()))
            }
            Ok(_) => line.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadError::Io(e)),
        }
        if line.ends_with(b"\r\n") {
            line.truncate(line.len() - 2);
            return Ok(String::from_utf8_lossy(&line).into_owned());
        }
        if line.len() > 1024 {
            return Err(ReadError::TooLarge("chunked framing line exceeds 1024 B".to_owned()));
        }
    }
}

/// Decode a `Transfer-Encoding: chunked` body: hex-size lines (chunk
/// extensions after `;` are ignored), chunk data, CRLF, terminated by a
/// zero-size chunk and its (possibly empty) trailer section. The
/// decoded total is capped at [`MAX_BODY_BYTES`] like any other body —
/// the caller sees only the reassembled bytes, so where the client cut
/// its chunks is invisible to handlers (chunk-split invariance over the
/// wire).
fn read_chunked_body<S: Read>(stream: &mut S) -> Result<Vec<u8>, ReadError> {
    let mut body = Vec::new();
    loop {
        let size_line = read_framing_line(stream)?;
        let size_hex = size_line.split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_hex, 16)
            .map_err(|_| ReadError::Malformed(format!("bad chunk size line {size_line:?}")))?;
        if size == 0 {
            // Trailer section: lines until the empty terminator. The
            // trailers themselves are ignored (none are defined here).
            loop {
                if read_framing_line(stream)?.is_empty() {
                    return Ok(body);
                }
            }
        }
        if body.len() + size > MAX_BODY_BYTES {
            return Err(ReadError::TooLarge(format!("chunked body exceeds {MAX_BODY_BYTES} B")));
        }
        let start = body.len();
        body.resize(start + size, 0);
        let mut filled = start;
        while filled < body.len() {
            match stream.read(&mut body[filled..]) {
                Ok(0) => {
                    return Err(ReadError::Malformed("connection closed mid-chunk".to_owned()))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
        // Each chunk's data is followed by its own CRLF.
        let terminator = read_framing_line(stream)?;
        if !terminator.is_empty() {
            return Err(ReadError::Malformed(format!(
                "expected CRLF after chunk data, got {terminator:?}"
            )));
        }
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `429`, `503`, …).
    pub status: u16,
    /// Extra headers beyond `Content-Type`/`Content-Length`/`Connection`.
    pub headers: Vec<(String, String)>,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            headers: Vec::new(),
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
        }
    }

    /// Add a header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.to_owned(), value));
        self
    }

    /// The standard reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            201 => "Created",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize and write the response. `close` controls the
    /// `Connection` header (and thus whether the peer should reuse the
    /// socket).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn write_to<W: Write>(&self, stream: &mut W, close: bool) -> io::Result<()> {
        let mut head = format!("HTTP/1.1 {} {}\r\n", self.status, self.reason());
        head.push_str(&format!("content-type: {}\r\n", self.content_type));
        head.push_str(&format!("content-length: {}\r\n", self.body.len()));
        head.push_str(if close { "connection: close\r\n" } else { "connection: keep-alive\r\n" });
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let req = parse(
            b"POST /match?format=jsonl HTTP/1.1\r\nHost: x\r\nX-Cicero-Fuel: 99\r\ncontent-length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/match");
        assert_eq!(req.query_param("format"), Some("jsonl"));
        assert_eq!(req.header("x-cicero-fuel"), Some("99"));
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn parses_a_bare_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_distinguished_from_truncation() {
        assert!(matches!(parse(b""), Err(ReadError::Eof)));
        assert!(matches!(parse(b"GET / HT"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_oversized_declarations_before_reading_them() {
        let huge = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(huge.as_bytes()), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn chunked_bodies_reassemble_regardless_of_chunking() {
        // Two splits of the same body decode to identical bytes.
        let req = parse(
            b"POST /scan/stream HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n4\r\nGET \r\n2\r\n/x\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"GET /x");
        let req = parse(
            b"POST /scan/stream HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n6\r\nGET /x\r\n0\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"GET /x");
        // Chunk extensions, uppercase hex, and trailers are tolerated.
        let req = parse(
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nA;ext=1\r\n0123456789\r\n0\r\nx-trailer: v\r\n\r\n",
        )
        .unwrap();
        assert_eq!(req.body, b"0123456789");
        // An empty chunked body is fine.
        let req = parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n0\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn malformed_chunked_framing_is_rejected() {
        // Bad size line.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nzz\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        // Missing CRLF after chunk data.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n2\r\nabXX\r\n0\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        // Truncated mid-chunk.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n8\r\nab"),
            Err(ReadError::Malformed(_))
        ));
        // Smuggling shape: both framings present.
        assert!(matches!(
            parse(
                b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\ncontent-length: 2\r\n\r\n0\r\n\r\n"
            ),
            Err(ReadError::Malformed(_))
        ));
        // Only `chunked` is implemented.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\ntransfer-encoding: gzip\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn rejects_non_http_preambles() {
        assert!(matches!(parse(b"SSH-2.0-OpenSSH\r\n\r\n"), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn responses_roundtrip_through_the_parser_shape() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\":\"budget\"}".to_owned())
            .with_header("retry-after", "1".to_owned())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"budget\"}"));
    }
}
