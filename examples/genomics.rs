//! Genomics scenario: PROSITE-style protein-motif scanning, the workload
//! family behind the Protomata benchmark. Demonstrates the paper's two
//! headline levers on a realistic pattern:
//!
//! 1. the high-level transformations + Jump Simplification improving
//!    code locality (`D_offset`), and
//! 2. the new multi-core engine improving execution time.
//!
//! ```sh
//! cargo run --release --example genomics
//! ```

use cicero::prelude::*;

/// Real PROSITE signatures, translated from their `C-x(2,4)-C` notation.
const MOTIFS: &[(&str, &str)] = &[
    // Zinc finger C2H2 (PS00028): C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H
    ("zinc-finger-C2H2", "C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H"),
    // EF-hand calcium-binding (PS00018, simplified)
    ("ef-hand", "D.[DNS][LIVFYW].[DENSTG][DNQGHRK].[LIVMC][DENQSTAGC].{2}[DE][LIVMFYW]"),
    // N-glycosylation site (PS00001): N-{P}-[ST]-{P}
    ("n-glycosylation", "N[^P][ST][^P]"),
    // Protein kinase C phosphorylation site (PS00005): [ST]-x-[RK]
    ("pkc-phospho", "[ST].[RK]"),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic protein with a zinc-finger motif planted in the middle.
    let mut rng_state = 0xBEEFu64;
    let mut sequence: Vec<u8> = (0..2000)
        .map(|_| {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            cicero::workloads::protomata::AMINO_ACIDS[(rng_state % 20) as usize]
        })
        .collect();
    let motif = b"CAACAAAL12345678H123H"
        .iter()
        .map(|b| if b.is_ascii_digit() { b'A' } else { *b })
        .collect::<Vec<u8>>();
    sequence[1000..1000 + motif.len()].copy_from_slice(&motif);

    println!("scanning a {}-residue synthetic protein\n", sequence.len());
    let optimized = Compiler::new();
    let unoptimized = Compiler::with_options(CompilerOptions::unoptimized());

    for (name, pattern) in MOTIFS {
        let opt = optimized.compile(pattern)?;
        let unopt = unoptimized.compile(pattern)?;
        println!("motif {name}: {pattern}");
        println!(
            "  code size {} -> {} instructions, D_offset {} -> {} (unopt -> opt)",
            unopt.code_size(),
            opt.code_size(),
            unopt.d_offset(),
            opt.d_offset()
        );
        // Old single engine vs the proposed 16-core engine.
        let old = ArchConfig::old_organization(1);
        let new = ArchConfig::new_organization(16, 1);
        let r_old = simulate(opt.program(), &sequence, &old);
        let r_new = simulate(opt.program(), &sequence, &new);
        assert_eq!(r_old.accepted, r_new.accepted);
        println!(
            "  {:<14} {:>7} cycles   {}",
            old.name(),
            r_old.cycles,
            if r_old.accepted { "MATCH" } else { "no match" }
        );
        println!(
            "  {:<14} {:>7} cycles   speedup {:.2}x\n",
            new.name(),
            r_new.cycles,
            r_old.cycles as f64 / r_new.cycles as f64
        );
        // Verify against the oracle.
        assert_eq!(r_new.accepted, Oracle::new(pattern)?.is_match(&sequence));
    }
    Ok(())
}
