//! Integration tests for the documented extensions beyond the paper:
//! multi-matching acceptance (Future Work) and pipeline tracing.

use cicero::prelude::*;
use cicero::sim::{render_trace, Machine, TraceNote};

#[test]
fn multi_match_set_on_every_architecture() {
    let patterns = ["abc", "x+y", "[0-9]{3}", "th(is|at)"];
    let set = Compiler::new().compile_set(&patterns).unwrap();
    let singles: Vec<Program> =
        patterns.iter().map(|p| compile(p).unwrap().into_program()).collect();
    let inputs: [&[u8]; 7] =
        [b"zabcz", b"xxxy!", b"id 042", b"this", b"none of them", b"", b"ab x y 12"];
    for config in [
        ArchConfig::old_organization(1),
        ArchConfig::old_organization(4),
        ArchConfig::new_organization(8, 1),
        ArchConfig::new_organization(16, 1),
    ] {
        for input in inputs {
            let report = simulate(set.program(), input, &config);
            let expected = singles.iter().any(|p| cicero::isa::accepts(p, input));
            assert_eq!(report.accepted, expected, "{} on {input:?}", config.name());
            if let Some(id) = report.matched_id {
                assert!(
                    cicero::isa::accepts(&singles[usize::from(id)], input),
                    "{}: reported id {id} does not actually match {input:?}",
                    config.name()
                );
            } else {
                assert!(!report.accepted, "acceptance without an id in a set program");
            }
        }
    }
}

#[test]
fn multi_match_binary_roundtrip() {
    let set = Compiler::new().compile_set(&["aa", "bb"]).unwrap();
    let bytes = cicero::isa::EncodedProgram::from_program(set.program()).to_bytes();
    let decoded = cicero::isa::EncodedProgram::from_bytes(&bytes).unwrap().decode().unwrap();
    assert_eq!(&decoded, set.program());
    assert_eq!(cicero::isa::run(&decoded, b"xbbx").matched_id, Some(1));
}

#[test]
fn tracing_is_timing_neutral_and_complete() {
    let program = compile("a[bc]+d").unwrap().into_program();
    let input = b"zzabcbcdzz";
    for config in [ArchConfig::old_organization(2), ArchConfig::new_organization(8, 1)] {
        let plain = simulate(&program, input, &config);
        let mut machine = Machine::new(&program, config.clone());
        let (traced, events) = machine.run_traced(input);
        assert_eq!(plain, traced, "{}", config.name());
        // Every executed instruction appears as an S2 event.
        let s2_events = events.iter().filter(|e| e.stage == 2).count() as u64;
        assert_eq!(s2_events, traced.instructions + traced.window_stall_cycles);
        // The acceptance is traced.
        assert!(events.iter().any(|e| e.note == TraceNote::Accepted));
        // Rendering shows all active cores.
        let text = render_trace(&events, 0..traced.cycles);
        assert!(text.contains("ENGINE 0 CORE 0"), "{text}");
    }
}

#[test]
fn leading_reduction_option_is_available_and_sound() {
    let mut options = CompilerOptions::optimized();
    options.shortest_match_leading = true;
    let extended = Compiler::with_options(options);
    let standard = Compiler::new();
    for pattern in ["a+b", "x{2,9}yz", "a*b*cd|e+f"] {
        let a = extended.compile(pattern).unwrap();
        let b = standard.compile(pattern).unwrap();
        assert!(a.code_size() <= b.code_size(), "{pattern}");
        for input in ["aab", "b", "xxyz", "cd", "eef", "nothing", ""] {
            assert_eq!(
                cicero::isa::accepts(a.program(), input.as_bytes()),
                cicero::isa::accepts(b.program(), input.as_bytes()),
                "{pattern} on {input:?}"
            );
        }
    }
}
