//! `cicero tune`: autotuning over the compiler × architecture space.
//!
//! The paper's core claim is that progressive lowering through the
//! `regex`/`cicero` dialects *exposes* optimization decisions — pass
//! ordering, CC_ID window, engine count, cache geometry — that a fixed
//! pipeline leaves on the table. This crate closes the loop: it searches
//! that space per workload, driven by a measured cost model, and persists
//! winners to a versioned `tune.toml` the CLI, runtime, and server load.
//!
//! The moving parts:
//!
//! * [`TuneConfig`] — one point in the search space: compiler toggles +
//!   pass order, simulated architecture parameters, host-backend engine
//!   tiers, and runtime knobs. `Copy + Hash + Eq`, so it keys the
//!   memoization table directly.
//! * [`SearchSpace`] — the axes and their candidate values, enumerable by
//!   index (mixed-radix), so exhaustive sweeps and seeded sampling draw
//!   from the same deterministic ordering.
//! * [`CostModel`] — pluggable evaluation: [`SimCostModel`] scores by
//!   simulated cycles (+ icache misses, deterministic, the default),
//!   [`HostCostModel`] by wall-clock microbenchmark (honest but noisy —
//!   its numbers never go into `tune.toml`).
//! * [`tune`] — the searcher: exhaustive over small spaces, seeded
//!   random + greedy mutation over large ones, memoized by
//!   `(workload fingerprint, config)`. Deterministic given a seed: the
//!   RNG is a [`rng::SplitMix64`] and the default config is always
//!   candidate zero, so the winner never loses to the baseline.
//! * [`TuneFile`] — the versioned `tune.toml` serialization: strict
//!   parser (unknown keys, duplicates, corruption, and future versions
//!   all fail loudly), byte-deterministic renderer (no timestamps).
//!
//! Telemetry lands under the `tune.*` namespace (see
//! `docs/OBSERVABILITY.md`).

pub mod config;
pub mod cost;
pub mod file;
pub mod rng;
pub mod search;
pub mod space;
pub mod workload;

pub use config::{ArchParams, OrganizationKind, TuneConfig};
pub use cost::{CostModel, CostReport, HostCostModel, SimCostModel};
pub use file::TuneFile;
pub use search::{tune, Budget, TuneOutcome};
pub use space::SearchSpace;
pub use workload::Workload;

/// Errors surfaced by tuning, evaluation, or `tune.toml` handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// A candidate's compilation failed (the pattern is reported).
    Compile(String),
    /// Reading or writing `tune.toml` failed.
    Io(String),
    /// `tune.toml` did not parse or failed validation.
    Parse(String),
    /// The search was asked to do something impossible (empty workload,
    /// zero budget, …).
    Invalid(String),
}

impl std::fmt::Display for TuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneError::Compile(msg) => write!(f, "compile error: {msg}"),
            TuneError::Io(msg) => write!(f, "io error: {msg}"),
            TuneError::Parse(msg) => write!(f, "tune.toml error: {msg}"),
            TuneError::Invalid(msg) => write!(f, "invalid tuning request: {msg}"),
        }
    }
}

impl std::error::Error for TuneError {}
