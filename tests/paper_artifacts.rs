//! The paper's worked examples, reproduced end-to-end through the public
//! APIs: Listing 1's IR shape, Listing 2's three assembly columns with
//! their `D_offset` values, Figure 5/6/7's transformation behaviour, and
//! the §3.2 transformation examples.

use cicero::prelude::*;

#[test]
fn listing1_regex_dialect_shape() {
    // `(ab)|c{3,6}d+`: root {hasPrefix, hasSuffix} with two alternated
    // concatenations.
    let ast = cicero::frontend::parse("(ab)|c{3,6}d+").unwrap();
    let ir = cicero::regex_dialect::ast_to_ir(&ast);
    let text = ir.to_text();
    assert!(text.contains("regex.root {has_prefix = true, has_suffix = true}"), "{text}");
    assert_eq!(text.matches("regex.concatenation").count(), 3); // root 2 + inner 1
    assert!(text.contains("regex.quantifier {max = 6, min = 3}"), "{text}");
    assert!(text.contains("regex.quantifier {max = -1, min = 1}"), "{text}");
    assert!(text.contains("regex.sub_regex"), "{text}");
}

#[test]
fn listing2_all_three_columns() {
    use cicero::isa::Instruction::*;

    // Column 1: no optimization — D_offset terms 3+2+5+1+3 (see the
    // locality module for the paper's off-by-one in the printed total).
    let unopt = Compiler::with_options(CompilerOptions::unoptimized())
        .compile("ab|cd")
        .unwrap()
        .into_program();
    assert_eq!(
        unopt.instructions(),
        &[
            Split(3),
            MatchAny,
            Jump(0),
            Split(8),
            Match(b'a'),
            Match(b'b'),
            Jump(7),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            Jump(7),
        ]
    );

    // Column 2: the old compiler's Code Restructuring — D_offset 21.
    let old = LegacyCompiler::new(true).compile("ab|cd").unwrap();
    assert_eq!(
        old.instructions(),
        &[
            Split(4),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Split(8),
            Match(b'c'),
            Match(b'd'),
            Jump(3),
            MatchAny,
            Jump(0),
        ]
    );
    assert_eq!(old.total_jump_offset(), 21);

    // Column 3: the new compiler's Jump Simplification — D_offset 9.
    let new = compile("ab|cd").unwrap().into_program();
    assert_eq!(
        new.instructions(),
        &[
            Split(3),
            MatchAny,
            Jump(0),
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            AcceptPartial,
        ]
    );
    assert_eq!(new.total_jump_offset(), 9);
}

#[test]
fn figure6_restructuring_hurts_locality_and_cycles() {
    // Figure 6's point is locality, not instruction count: on a program
    // larger than the instruction cache, Code Restructuring's scattered
    // layout costs real cycles. (For tiny `ab|cd` the whole program fits
    // in cache and only D_offset distinguishes the layouts — Listing 2.)
    let pattern =
        "alphaalpha|bravobravo|charliecharlie|deltadelta|echoechoecho|foxtrotfoxtrot|golfgolf|hotelhotel";
    let old_unopt = LegacyCompiler::new(false).compile(pattern).unwrap();
    let old_opt = LegacyCompiler::new(true).compile(pattern).unwrap();
    assert!(
        old_opt.total_jump_offset() > old_unopt.total_jump_offset(),
        "restructuring must scatter basic blocks: {} vs {}",
        old_opt.total_jump_offset(),
        old_unopt.total_jump_offset()
    );
    let input = vec![b'z'; 300];
    let config = ArchConfig::old_organization(1);
    let unopt = simulate(&old_unopt, &input, &config);
    let opt = simulate(&old_opt, &input, &config);
    assert!(
        opt.icache_misses > unopt.icache_misses,
        "restructured {} misses vs chain {}",
        opt.icache_misses,
        unopt.icache_misses
    );
    assert!(
        opt.cycles > unopt.cycles,
        "restructured {} cycles vs chain {}",
        opt.cycles,
        unopt.cycles
    );
}

#[test]
fn section32_transformation_examples_through_the_driver() {
    // Each §3.2 example, run with exactly its transformation set enabled
    // (the paper presents the three sets as independent toggles).
    let check = |input: &str, expected: &str, configure: fn(&mut CompilerOptions)| {
        let mut options = CompilerOptions::unoptimized();
        configure(&mut options);
        let compiler = Compiler::with_options(options);
        let artifacts = compiler.compile_with_artifacts(input).unwrap();
        assert_eq!(
            cicero::regex_dialect::ir_to_pattern(&artifacts.regex_ir_optimized),
            expected,
            "for {input:?}"
        );
    };
    let set1: fn(&mut CompilerOptions) = |o| o.canonicalize = true;
    let set2: fn(&mut CompilerOptions) = |o| o.factorize = true;
    let set3: fn(&mut CompilerOptions) = |o| o.shortest_match = true;
    check("(abc)", "abc", set1);
    check("(a+)", "a+", set1);
    check("(a)+", "a+", set1);
    check("(a{2,3}){4,7}", "(a{2,3}){4,7}", set1);
    check("this|that|those", "th(is|at|ose)", set2);
    check("a(bc|bd)", "a(b(c|d))", set2);
    check("a{2,3}|b{4,5}", "a{2}|b{4}", set3);
    check("abcd*|efgh+", "abc|efgh", set3);
    check("ab*$", "ab*$", set3);
}

#[test]
fn negated_group_lowering_matches_section33() {
    use cicero::isa::Instruction::*;
    // `[^ab]` → NotMatch(a); NotMatch(b); MatchAny.
    let program = compile("^[^ab]$").unwrap().into_program();
    assert_eq!(program.instructions(), &[NotMatch(b'a'), NotMatch(b'b'), MatchAny, Accept]);
}

#[test]
fn jump_simplification_beats_code_restructuring_on_locality() {
    // Figure 10's claim at the pattern level, over a diverse corpus.
    for pattern in [
        "ab|cd",
        "th(is|at|ose)",
        "(a|(b|(c|d)))",
        "C.{2,4}C.{3}[LIVMFYWC].{8}H",
        "(walk|talk)(ed|ing)? (quick|slow)",
    ] {
        let new = compile(pattern).unwrap();
        let old = LegacyCompiler::new(true).compile(pattern).unwrap();
        assert!(
            new.d_offset() < old.total_jump_offset(),
            "{pattern:?}: new {} vs old {}",
            new.d_offset(),
            old.total_jump_offset()
        );
    }
}

#[test]
fn table1_semantics_not_match_does_not_advance() {
    // NoMatch(OP): "if OP != *cc, PC+1" — cc unchanged. `[^a][^b]` must
    // test both against DIFFERENT characters, with each class consuming
    // exactly one.
    let program = compile("^[^a][^b]$").unwrap().into_program();
    assert!(cicero::isa::accepts(&program, b"xy"));
    assert!(cicero::isa::accepts(&program, b"ba"));
    assert!(!cicero::isa::accepts(&program, b"ab"));
    assert!(!cicero::isa::accepts(&program, b"x"));
    assert!(!cicero::isa::accepts(&program, b"xyz"));
}

#[test]
fn future_work_acceptance_halts_as_soon_as_possible() {
    // §5: "the NFA traversal can stop as soon as possible without paying
    // the cost of additional jump operations" — with Jump Simplification
    // the first matching branch accepts without detouring to a shared
    // acceptance block.
    let program = compile("aa|bb").unwrap().into_program();
    let outcome = cicero::isa::run(&program, b"aa");
    assert!(outcome.accepted);
    // `aa` matches the first branch: acceptance must fire right at the
    // end of it (position 2).
    assert_eq!(outcome.match_position, Some(2));
}

#[test]
fn figure4_trace_golden_small_split_match() {
    // Golden rendering for a minimal split/match program:
    //   0 split(2); 1 matchany; 2 match a; 3 match b; 4 accept_partial
    // on input "ab", one engine, one core. The split fans out in S2/S3,
    // the `.*` arm dies on the window edge (`2x`), and the literal arm
    // walks a -> b -> accept. Any change to pipeline timing or to the
    // cell legend shows up as a diff against this table.
    use cicero::isa::{Instruction::*, Program};
    use cicero::sim::{render_trace, ArchConfig, Machine};

    let program = Program::from_instructions(vec![
        Split(2),
        MatchAny,
        Match(b'a'),
        Match(b'b'),
        AcceptPartial,
    ])
    .unwrap();
    let mut machine = Machine::new(&program, ArchConfig::old_organization(1));
    let (report, events) = machine.run_traced(b"ab");
    assert!(report.accepted);
    assert_eq!(report.cycles, 15);

    let text = render_trace(&events, 0..report.cycles);
    let golden = "\
cycle                0   1   2   3   4   5   6   7   8   9  10  11  12  13  14
ENGINE 0 CORE 0
  S1                 0   .   .   .   .   .   .   2   .   .   .   .   .   .   .
  S2                 .   .   .   .   . 0s2  1+  2x  2+  3+   .   .   .   .  4!
  S3                 .   .   .   .   .   . 0>2   .   .   .   .   .   .   .   .
";
    assert_eq!(text, golden, "rendered:\n{text}");
}
