//! The high-level transformation sets of §3.2.
//!
//! Each set is an independent [`Pass`](mlir_lite::Pass), mirroring the
//! paper's "each transformation is optional and can be enabled or disabled
//! individually by toggling different compiler options":
//!
//! * [`CanonicalizePass`] — sub-regex simplification (set 1);
//! * [`FactorizeAlternationsPass`] — alternation prefix factorization
//!   (set 2);
//! * [`ShortestMatchPass`] — boundary quantifier reduction for any-match
//!   engines (set 3, the only semantics-changing one: it preserves *whether
//!   a match exists*, not the match extent);
//! * [`ShortestMatchLeadingPass`] — the symmetric reduction at the leading
//!   boundary, an extension beyond the paper (off by default).

mod factorize;
mod shortest_match;
mod simplify;

pub use factorize::FactorizeAlternationsPass;
pub use shortest_match::{ShortestMatchLeadingPass, ShortestMatchPass};
pub use simplify::CanonicalizePass;

use mlir_lite::{PassManager, PassRegistry};

/// One of the three orderable high-level transformation sets.
///
/// The beyond-the-paper leading reduction is not a slot of its own: it is
/// soundness-coupled to the trailing reduction and always runs directly
/// after [`HighLevelPass::ShortestMatch`]'s slot when enabled, wherever
/// that slot lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HighLevelPass {
    /// Set 1: sub-regex simplification / canonicalization.
    Canonicalize,
    /// Set 2: alternation prefix factorization.
    Factorize,
    /// Set 3: shortest-match boundary quantifier reduction.
    ShortestMatch,
}

impl HighLevelPass {
    /// The pass's stable diagnostic name (the [`PassRegistry`] key).
    pub fn pass_name(self) -> &'static str {
        match self {
            HighLevelPass::Canonicalize => "regex-canonicalize",
            HighLevelPass::Factorize => "regex-factorize-alternations",
            HighLevelPass::ShortestMatch => "regex-shortest-match-reduction",
        }
    }

    /// Short token used in serialized pass orders (`tune.toml`).
    pub fn token(self) -> &'static str {
        match self {
            HighLevelPass::Canonicalize => "canonicalize",
            HighLevelPass::Factorize => "factorize",
            HighLevelPass::ShortestMatch => "shortest-match",
        }
    }

    fn from_token(token: &str) -> Option<HighLevelPass> {
        match token {
            "canonicalize" => Some(HighLevelPass::Canonicalize),
            "factorize" => Some(HighLevelPass::Factorize),
            "shortest-match" => Some(HighLevelPass::ShortestMatch),
            _ => None,
        }
    }
}

/// A permutation of the three high-level transformation sets — the pass
/// scheduling axis of the compiler × architecture search space.
///
/// `Copy + Hash + Eq` are load-bearing: the order rides inside
/// `CompilerOptions`, which keys the runtime's compiled-program cache, so
/// two requests share a cache entry exactly when their pass orders agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassOrder([HighLevelPass; 3]);

impl Default for PassOrder {
    /// The paper's order: canonicalize → factorize → shortest-match.
    fn default() -> PassOrder {
        PassOrder([
            HighLevelPass::Canonicalize,
            HighLevelPass::Factorize,
            HighLevelPass::ShortestMatch,
        ])
    }
}

impl PassOrder {
    /// Build an order from an explicit permutation.
    ///
    /// Returns `None` unless `slots` names each set exactly once.
    pub fn new(slots: [HighLevelPass; 3]) -> Option<PassOrder> {
        let mut sorted = slots;
        sorted.sort();
        (sorted
            == [
                HighLevelPass::Canonicalize,
                HighLevelPass::Factorize,
                HighLevelPass::ShortestMatch,
            ])
        .then_some(PassOrder(slots))
    }

    /// The slots, first-to-run first.
    pub fn slots(self) -> [HighLevelPass; 3] {
        self.0
    }

    /// All six permutations, in a deterministic order with the paper's
    /// default first (so exhaustive searches always cover the baseline).
    pub fn all() -> [PassOrder; 6] {
        use HighLevelPass::{Canonicalize as C, Factorize as F, ShortestMatch as S};
        [
            PassOrder([C, F, S]),
            PassOrder([C, S, F]),
            PassOrder([F, C, S]),
            PassOrder([F, S, C]),
            PassOrder([S, C, F]),
            PassOrder([S, F, C]),
        ]
    }

    /// Serialize as the `tune.toml` token list, e.g.
    /// `canonicalize,factorize,shortest-match`.
    pub fn to_token_string(self) -> String {
        let tokens: Vec<&str> = self.0.iter().map(|p| p.token()).collect();
        tokens.join(",")
    }

    /// Parse a [`PassOrder::to_token_string`] rendering.
    ///
    /// # Errors
    ///
    /// Rejects unknown tokens and non-permutations (missing or repeated
    /// sets) with a message naming the offending input.
    pub fn parse(text: &str) -> Result<PassOrder, String> {
        let tokens: Vec<&str> = text.split(',').map(str::trim).collect();
        if tokens.len() != 3 {
            return Err(format!(
                "pass order `{text}` must name exactly 3 passes, got {}",
                tokens.len()
            ));
        }
        let mut slots = [HighLevelPass::Canonicalize; 3];
        for (slot, token) in slots.iter_mut().zip(&tokens) {
            *slot = HighLevelPass::from_token(token)
                .ok_or_else(|| format!("unknown pass token `{token}` in pass order `{text}`"))?;
        }
        PassOrder::new(slots)
            .ok_or_else(|| format!("pass order `{text}` must name each pass exactly once"))
    }
}

/// Which high-level transformation sets to register (all on by default,
/// except the beyond-the-paper leading reduction), and in which order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HighLevelOptions {
    /// Set 1: sub-regex simplification / canonicalization.
    pub canonicalize: bool,
    /// Set 2: alternation prefix factorization.
    pub factorize: bool,
    /// Set 3: shortest-match boundary quantifier reduction.
    pub shortest_match: bool,
    /// Extension: the same reduction at the leading boundary.
    pub shortest_match_leading: bool,
    /// Relative order of the enabled sets (default: the paper's order).
    pub order: PassOrder,
}

impl Default for HighLevelOptions {
    fn default() -> HighLevelOptions {
        HighLevelOptions {
            canonicalize: true,
            factorize: true,
            shortest_match: true,
            shortest_match_leading: false,
            order: PassOrder::default(),
        }
    }
}

/// The dialect's pass catalogue, keyed by diagnostic name — the
/// configuration-driven twin of [`build_pipeline`], used by drivers that
/// assemble pipelines from serialized specs.
pub fn pass_registry() -> PassRegistry {
    let mut registry = PassRegistry::new();
    registry.register("regex-canonicalize", || Box::new(CanonicalizePass));
    registry.register("regex-factorize-alternations", || Box::new(FactorizeAlternationsPass));
    registry.register("regex-shortest-match-reduction", || Box::new(ShortestMatchPass));
    registry
        .register("regex-shortest-match-leading-reduction", || Box::new(ShortestMatchLeadingPass));
    registry
}

/// The pipeline `options` describes, as registry pass names in execution
/// order — the serialized form an autotuner searches over.
pub fn pipeline_names(options: &HighLevelOptions) -> Vec<&'static str> {
    let mut names = Vec::new();
    for slot in options.order.slots() {
        let enabled = match slot {
            HighLevelPass::Canonicalize => options.canonicalize,
            HighLevelPass::Factorize => options.factorize,
            HighLevelPass::ShortestMatch => options.shortest_match,
        };
        if enabled {
            names.push(slot.pass_name());
        }
        // The leading reduction is anchored to the trailing one's slot:
        // it shares the same soundness argument (the implicit `.*`
        // boundary), so it travels with it rather than being a slot of
        // its own.
        if slot == HighLevelPass::ShortestMatch && options.shortest_match_leading {
            names.push("regex-shortest-match-leading-reduction");
        }
    }
    if options.canonicalize && (options.factorize || options.shortest_match) {
        // Clean up wrappers the structural transforms introduce.
        names.push("regex-canonicalize");
    }
    names
}

/// Register the enabled `regex`-dialect transforms on a pass manager, in
/// `options.order` (default: the paper's canonicalize → factorize →
/// shortest-match), with a trailing cleanup canonicalization when
/// structural transforms ran.
///
/// This is the dialect's single registration point: every driver —
/// compiler, CLI, benchmarks, the autotuner — builds its high-level
/// pipeline here (through the name-keyed [`pass_registry`]), so pass
/// order and instrumentation hooks stay consistent.
pub fn build_pipeline(pm: &mut PassManager, options: &HighLevelOptions) {
    pass_registry()
        .build(pm, &pipeline_names(options))
        .expect("pipeline_names only emits registered passes");
}

#[cfg(test)]
mod equivalence_tests;

#[cfg(test)]
mod pipeline_tests {
    use super::*;

    #[test]
    fn default_pipeline_registers_all_paper_sets() {
        let mut pm = PassManager::new();
        build_pipeline(&mut pm, &HighLevelOptions::default());
        assert_eq!(pm.len(), 4); // canonicalize, factorize, shortest, cleanup
    }

    #[test]
    fn disabled_options_register_nothing() {
        let all_off = HighLevelOptions {
            canonicalize: false,
            factorize: false,
            shortest_match: false,
            shortest_match_leading: false,
            order: PassOrder::default(),
        };
        let mut pm = PassManager::new();
        build_pipeline(&mut pm, &all_off);
        assert!(pm.is_empty());
    }

    #[test]
    fn pass_order_round_trips_all_permutations() {
        for order in PassOrder::all() {
            let text = order.to_token_string();
            assert_eq!(PassOrder::parse(&text), Ok(order), "round-trip of `{text}`");
        }
    }

    #[test]
    fn pass_order_parse_rejects_malformed_inputs() {
        assert!(PassOrder::parse("canonicalize,factorize").is_err());
        assert!(PassOrder::parse("canonicalize,canonicalize,factorize").is_err());
        assert!(PassOrder::parse("canonicalize,factorize,bogus").is_err());
    }

    #[test]
    fn reordered_pipeline_emits_slots_in_requested_order() {
        use HighLevelPass::{Canonicalize as C, Factorize as F, ShortestMatch as S};
        let options = HighLevelOptions {
            order: PassOrder::new([S, F, C]).unwrap(),
            shortest_match_leading: true,
            ..HighLevelOptions::default()
        };
        assert_eq!(
            pipeline_names(&options),
            vec![
                "regex-shortest-match-reduction",
                "regex-shortest-match-leading-reduction",
                "regex-factorize-alternations",
                "regex-canonicalize",
                "regex-canonicalize", // trailing cleanup
            ]
        );
    }
}
