//! PROSITE-style protein-signature generator (the Protomata stand-in).
//!
//! Real Protomata patterns derive from PROSITE signatures such as
//! `C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H`, which in regex syntax is
//! `C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H`. The generator emits signatures of
//! the same shape: alternating exact residues, residue classes, and
//! bounded `x(m,n)` gaps over the 20-letter amino-acid alphabet.

use rand::rngs::StdRng;
use rand::RngExt;

/// The 20 standard amino-acid one-letter codes.
pub const AMINO_ACIDS: &[u8; 20] = b"ACDEFGHIKLMNPQRSTVWY";

/// Generate one signature pattern.
pub fn signature(rng: &mut StdRng) -> String {
    let elements = rng.random_range(5..=12);
    let mut out = String::new();
    let mut last_was_gap = true; // avoid starting with a gap
    for _ in 0..elements {
        let choice = rng.random_range(0..10);
        if choice < 2 && !last_was_gap {
            // Bounded gap: `.{m,n}` (PROSITE `x(m,n)`), occasionally exact.
            let min = rng.random_range(1..=4);
            let max = min + rng.random_range(0..=4);
            if min == max {
                out.push_str(&format!(".{{{min}}}"));
            } else {
                out.push_str(&format!(".{{{min},{max}}}"));
            }
            last_was_gap = true;
        } else if choice < 6 {
            // A residue class like `[LIVM]`.
            let size = rng.random_range(2..=5);
            let mut members: Vec<u8> = Vec::with_capacity(size);
            while members.len() < size {
                let aa = AMINO_ACIDS[rng.random_range(0..AMINO_ACIDS.len())];
                if !members.contains(&aa) {
                    members.push(aa);
                }
            }
            out.push('[');
            for m in members {
                out.push(m as char);
            }
            out.push(']');
            last_was_gap = false;
        } else {
            // An exact residue, sometimes repeated.
            let aa = AMINO_ACIDS[rng.random_range(0..AMINO_ACIDS.len())] as char;
            out.push(aa);
            if rng.random_bool(0.15) {
                out.push_str(&format!("{{{}}}", rng.random_range(2..=3)));
            }
            last_was_gap = false;
        }
    }
    out
}

/// Generate a protein-like input chunk: random residues with mild
/// composition bias (hydrophobic residues are more common, as in real
/// sequences), which produces realistic partial-match behaviour.
pub fn sequence_chunk(rng: &mut StdRng, len: usize) -> Vec<u8> {
    // Biased sampling: the first eight residues are drawn twice as often.
    (0..len)
        .map(|_| {
            let index = if rng.random_bool(0.5) {
                rng.random_range(0..8)
            } else {
                rng.random_range(0..AMINO_ACIDS.len())
            };
            AMINO_ACIDS[index]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn signatures_use_the_amino_alphabet() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let s = signature(&mut rng);
            for b in s.bytes() {
                assert!(
                    AMINO_ACIDS.contains(&b) || b".{},[]0123456789".contains(&b),
                    "unexpected byte {} in {s:?}",
                    b as char
                );
            }
            assert!(!s.is_empty());
            assert!(!s.starts_with('.'), "{s:?} starts with a gap");
        }
    }

    #[test]
    fn chunks_are_protein_like() {
        let mut rng = StdRng::seed_from_u64(2);
        let chunk = sequence_chunk(&mut rng, 500);
        assert_eq!(chunk.len(), 500);
        assert!(chunk.iter().all(|b| AMINO_ACIDS.contains(b)));
    }
}
