//! The metrics registry: counters, gauges, fixed-bucket histograms.

use std::collections::BTreeMap;

/// Default histogram bucket upper bounds: half-decade steps covering
/// everything from single cycles to multi-million-cycle runs.
pub const DEFAULT_BUCKETS: &[f64] =
    &[1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1e3, 5e3, 1e4, 5e4, 1e5, 5e5, 1e6, 5e6, 1e7];

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone sum.
    Counter(u64),
    /// Last-write-wins value.
    Gauge(f64),
    /// Fixed-bucket histogram.
    Histogram(Histogram),
}

/// A sampled observation pinned to a histogram bucket, linking the
/// bucket back to the entity (e.g. a request id) that populated it.
#[derive(Debug, Clone, PartialEq)]
pub struct Exemplar {
    /// The observed value.
    pub value: f64,
    /// Free-form label, conventionally a request id.
    pub label: String,
}

/// A fixed-bucket histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive upper bounds, ascending; an implicit `+inf` bucket
    /// follows.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Latest exemplar per bucket (same length as `counts`).
    exemplars: Vec<Option<Exemplar>>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            exemplars: vec![None; bounds.len() + 1],
        }
    }

    /// Reassemble a histogram from merged shard state.
    pub(crate) fn from_parts(
        bounds: Vec<f64>,
        counts: Vec<u64>,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
        exemplars: Vec<Option<Exemplar>>,
    ) -> Histogram {
        Histogram { bounds, counts, count, sum, min, max, exemplars }
    }

    fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return; // never let NaN/inf poison exported metrics
        }
        let index = self.bounds.iter().position(|b| value <= *b).unwrap_or(self.bounds.len());
        self.counts[index] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn record_with_exemplar(&mut self, value: f64, label: &str) {
        if !value.is_finite() {
            return;
        }
        self.record(value);
        let index = self.bounds.iter().position(|b| value <= *b).unwrap_or(self.bounds.len());
        self.exemplars[index] = Some(Exemplar { value, label: label.to_owned() });
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            bucket_counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            exemplars: self.exemplars.clone(),
        }
    }
}

/// Point-in-time view of a histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending (the final `+inf` bucket is
    /// implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one entry per bound plus the overflow bucket.
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Latest exemplar per bucket (one entry per bound plus overflow).
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Name-keyed store of all metrics (deterministic iteration order).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Add to a counter, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.metrics.entry(name.to_owned()).or_insert(Metric::Counter(0)) {
            Metric::Counter(total) => *total += delta,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Set a gauge, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        match self.metrics.entry(name.to_owned()).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(current) => *current = value,
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Record into a histogram; `bounds` apply on first registration.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn observe(&mut self, name: &str, value: f64, bounds: &[f64]) {
        match self
            .metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(histogram) => histogram.record(value),
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Record into a histogram and pin `label` as the latest exemplar of
    /// the bucket the value lands in.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn observe_with_exemplar(&mut self, name: &str, value: f64, bounds: &[f64], label: &str) {
        match self
            .metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(histogram) => histogram.record_with_exemplar(value, label),
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Install a fully-merged counter (shard merge path).
    pub(crate) fn insert_counter(&mut self, name: String, total: u64) {
        self.metrics.insert(name, Metric::Counter(total));
    }

    /// Install a fully-merged gauge (shard merge path).
    pub(crate) fn insert_gauge(&mut self, name: String, value: f64) {
        self.metrics.insert(name, Metric::Gauge(value));
    }

    /// Install a fully-merged histogram (shard merge path).
    pub(crate) fn insert_histogram(&mut self, name: String, histogram: Histogram) {
        self.metrics.insert(name, Metric::Histogram(histogram));
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(Metric::Counter(total)) => *total,
            _ => 0,
        }
    }

    /// Gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(value)) => Some(*value),
            _ => None,
        }
    }

    /// Histogram snapshot.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(Metric::Histogram(histogram)) => Some(histogram.snapshot()),
            _ => None,
        }
    }

    /// Iterate all metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(name, metric)| (name.as_str(), metric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_observations_are_dropped() {
        let mut registry = MetricsRegistry::new();
        registry.observe("h", f64::NAN, &[1.0]);
        registry.observe("h", f64::INFINITY, &[1.0]);
        registry.observe("h", 0.5, &[1.0]);
        let snapshot = registry.histogram("h").unwrap();
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.sum, 0.5);
    }

    #[test]
    fn overflow_bucket_catches_large_values() {
        let mut registry = MetricsRegistry::new();
        registry.observe("h", 99.0, &[1.0, 10.0]);
        let snapshot = registry.histogram("h").unwrap();
        assert_eq!(snapshot.bucket_counts, vec![0, 0, 1]);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let mut registry = MetricsRegistry::new();
        registry.observe("h", f64::NAN, &[1.0]);
        let snapshot = registry.histogram("h").unwrap();
        assert_eq!(snapshot.min, 0.0);
        assert_eq!(snapshot.max, 0.0);
        assert_eq!(snapshot.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let mut registry = MetricsRegistry::new();
        registry.gauge_set("m", 1.0);
        registry.counter_add("m", 1);
    }
}
