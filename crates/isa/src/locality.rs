//! The `D_offset` code-locality proxy metric (§5, Equation 1).
//!
//! The paper evaluates code locality statically at compile time:
//!
//! > We define the *total jump offset* `D_offset` as the sum over all
//! > instructions of `d_offset(i)`, where `d_offset(i)` is 0 for all
//! > instructions except for `JumpOp` and `SplitOp`, for which it is the
//! > offset of the jump. These offsets represent the distances between basic
//! > blocks. A higher value indicates a lower code locality.
//!
//! The offset of a control-flow instruction at address `a` targeting `t` is
//! `|t − a|`; this reproduces the worked values in Listing 2 of the paper
//! (13 unoptimized, 21 after Code Restructuring, 9 after Jump
//! Simplification for `ab|cd` with an implicit `.*` prefix).

use crate::instruction::Instruction;
use crate::program::Program;

/// Per-instruction jump offset `d_offset(i)`.
///
/// Zero for everything except `Split` and `Jump`, whose offset is the
/// absolute distance between the instruction address and its target.
pub fn instruction_jump_offset(address: usize, ins: Instruction) -> u64 {
    match ins.branch_target() {
        Some(target) => (i64::from(target) - address as i64).unsigned_abs(),
        None => 0,
    }
}

/// Total jump offset `D_offset` of a program (Equation 1). Lower is better.
pub fn total_jump_offset(program: &Program) -> u64 {
    program
        .instructions()
        .iter()
        .enumerate()
        .map(|(address, ins)| instruction_jump_offset(address, *ins))
        .sum()
}

/// A per-class breakdown of `D_offset`, useful for diagnosing which
/// construct (alternation splits vs. loop-back jumps) hurts locality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LocalityBreakdown {
    /// Contribution from `Split` instructions.
    pub split_offset: u64,
    /// Contribution from `Jump` instructions.
    pub jump_offset: u64,
    /// Number of `Split` instructions.
    pub split_count: usize,
    /// Number of `Jump` instructions.
    pub jump_count: usize,
}

impl LocalityBreakdown {
    /// Compute the breakdown for a program.
    pub fn of(program: &Program) -> LocalityBreakdown {
        let mut b = LocalityBreakdown::default();
        for (address, ins) in program.instructions().iter().enumerate() {
            let offset = instruction_jump_offset(address, *ins);
            match ins {
                Instruction::Split(_) => {
                    b.split_offset += offset;
                    b.split_count += 1;
                }
                Instruction::Jump(_) => {
                    b.jump_offset += offset;
                    b.jump_count += 1;
                }
                _ => {}
            }
        }
        b
    }

    /// `D_offset` = split + jump contributions.
    pub fn total(&self) -> u64 {
        self.split_offset + self.jump_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction::*;
    use crate::program::Program;

    /// Listing 2, left column: `ab|cd` with implicit `.*`, no optimization.
    fn no_opt() -> Program {
        Program::from_instructions(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Split(8),
            Match(b'a'),
            Match(b'b'),
            Jump(7),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            Jump(7),
        ])
        .unwrap()
    }

    /// Listing 2, middle column: after the old compiler's Code Restructuring.
    fn code_restructuring() -> Program {
        Program::from_instructions(vec![
            Split(4),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Split(8),
            Match(b'c'),
            Match(b'd'),
            Jump(3),
            MatchAny,
            Jump(0),
        ])
        .unwrap()
    }

    /// Listing 2, right column: after the new compiler's Jump Simplification.
    fn jump_simplification() -> Program {
        Program::from_instructions(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            AcceptPartial,
        ])
        .unwrap()
    }

    #[test]
    fn listing2_no_opt_d_offset_terms() {
        // The paper prints `D_offset = 3+2+5+1+3 = 13`, but those terms sum
        // to 14 — an arithmetic slip in the text. The per-instruction terms
        // (3, 2, 5, 1, 3) themselves are reproduced exactly, as are the
        // other two columns' totals (21 and 9).
        let p = no_opt();
        let terms: Vec<u64> = p
            .instructions()
            .iter()
            .enumerate()
            .map(|(a, i)| instruction_jump_offset(a, *i))
            .filter(|d| *d != 0)
            .collect();
        assert_eq!(terms, vec![3, 2, 5, 1, 3]);
        assert_eq!(total_jump_offset(&p), 14);
    }

    #[test]
    fn listing2_code_restructuring_d_offset_is_21() {
        assert_eq!(total_jump_offset(&code_restructuring()), 21);
    }

    #[test]
    fn listing2_jump_simplification_d_offset_is_9() {
        assert_eq!(total_jump_offset(&jump_simplification()), 9);
    }

    #[test]
    fn breakdown_sums_to_total() {
        for p in [no_opt(), code_restructuring(), jump_simplification()] {
            let b = LocalityBreakdown::of(&p);
            assert_eq!(b.total(), total_jump_offset(&p));
        }
    }

    #[test]
    fn breakdown_counts() {
        let b = LocalityBreakdown::of(&no_opt());
        assert_eq!(b.split_count, 2);
        assert_eq!(b.jump_count, 3);
        assert_eq!(b.split_offset, 3 + 5);
        assert_eq!(b.jump_offset, 2 + 1 + 3);
    }

    #[test]
    fn backward_and_forward_offsets_are_symmetric() {
        assert_eq!(instruction_jump_offset(10, Jump(2)), 8);
        assert_eq!(instruction_jump_offset(2, Jump(10)), 8);
        assert_eq!(instruction_jump_offset(5, Match(b'x')), 0);
    }
}
