//! Golden tests for the synthetic workload suites: pinned pattern and
//! match counts plus exact simulator report fields at fixed seeds, so an
//! accidental change to workload generation (or to execution semantics)
//! shows up as a concrete diff instead of silently shifting benchmark
//! results.
//!
//! The pinned numbers were produced by running these suites once at the
//! seeds below; they have no external meaning. If a deliberate generator
//! or simulator change moves them, re-pin by running the test and copying
//! the reported values — but treat any *unexplained* movement as a bug.

use cicero_core::Compiler;
use cicero_sim::{simulate, simulate_streaming, ArchConfig, ExecReport};
use workloads::Benchmark;

/// Oracle matches over every (pattern, chunk) pair.
fn oracle_matches(bench: &Benchmark) -> usize {
    let oracles: Vec<_> =
        bench.patterns.iter().map(|p| regex_oracle::Oracle::new(p).unwrap()).collect();
    bench.chunks.iter().map(|chunk| oracles.iter().filter(|o| o.is_match(chunk)).count()).sum()
}

/// The compiled multi-pattern set over every chunk on the paper's 16-core
/// organization: (chunks that matched, total cycles, total instructions).
fn simulated_totals(bench: &Benchmark) -> (usize, u64, u64) {
    let set = Compiler::new().compile_set(&bench.patterns).unwrap();
    let config = ArchConfig::new_organization(16, 1);
    let mut matched = 0usize;
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    for chunk in &bench.chunks {
        let report = simulate(set.program(), chunk, &config);
        assert!(!report.hit_cycle_limit, "{} hit the cycle limit", bench.name);
        matched += usize::from(report.accepted);
        cycles += report.cycles;
        instructions += report.instructions;
    }
    (matched, cycles, instructions)
}

#[test]
fn protomata_golden_counts() {
    let bench = Benchmark::protomata(42, 8, 12);
    assert_eq!(bench.patterns.len(), 8);
    assert_eq!(bench.chunks.len(), 12);
    assert_eq!(oracle_matches(&bench), 2);
    assert_eq!(simulated_totals(&bench), (2, 49983, 233340));
}

#[test]
fn brill_golden_counts() {
    let bench = Benchmark::brill(42, 8, 12);
    assert_eq!(bench.patterns.len(), 8);
    assert_eq!(bench.chunks.len(), 12);
    assert_eq!(oracle_matches(&bench), 8);
    assert_eq!(simulated_totals(&bench), (6, 112421, 589154));
}

#[test]
fn alternate_suites_golden_counts() {
    let protomata4 = Benchmark::protomata4(42, 3, 8);
    assert_eq!(protomata4.patterns.len(), 3);
    assert_eq!(oracle_matches(&protomata4), 4);
    let brill4 = Benchmark::brill4(42, 3, 8);
    assert_eq!(brill4.patterns.len(), 3);
    assert_eq!(oracle_matches(&brill4), 23);
}

/// One representative run pinned field by field: the full [`ExecReport`]
/// of the Brill set over its first chunk. Any semantic drift in the
/// simulator (cycle accounting, icache behaviour, dedup) lands here.
#[test]
fn brill_first_chunk_report_is_pinned() {
    let bench = Benchmark::brill(42, 8, 12);
    let set = Compiler::new().compile_set(&bench.patterns).unwrap();
    let report = simulate(set.program(), &bench.chunks[0], &ArchConfig::new_organization(16, 1));
    assert_eq!(
        report,
        ExecReport {
            cycles: 11723,
            accepted: false,
            match_position: None,
            matched_id: None,
            instructions: 62852,
            icache_hits: 32552,
            icache_misses: 31011,
            memory_stall_cycles: 101344,
            window_stall_cycles: 711,
            cross_engine_transfers: 0,
            deduplicated: 832,
            peak_threads: 59,
            hit_cycle_limit: false,
        }
    );
}

/// The workload chunks are exactly what the streaming runtime sees in
/// batch serving: streaming a chunk split into 100-byte pieces must be
/// byte-identical to simulating it whole.
#[test]
fn workload_chunks_are_chunk_split_invariant() {
    for bench in [Benchmark::protomata(42, 8, 4), Benchmark::brill(42, 8, 4)] {
        let set = Compiler::new().compile_set(&bench.patterns).unwrap();
        let config = ArchConfig::new_organization(16, 1);
        for chunk in &bench.chunks {
            let whole = simulate(set.program(), chunk, &config);
            let streamed = simulate_streaming(set.program(), chunk.chunks(100), &config);
            assert_eq!(streamed, whole, "{}", bench.name);
        }
    }
}
