//! Instruction and opcode definitions (Table 1 of the paper).

use std::fmt;

/// Maximum value of the 13-bit instruction operand (jump targets and, with
/// room to spare, 8-bit characters). Programs are therefore limited to
/// `MAX_OPERAND + 1 = 8192` instructions.
pub const MAX_OPERAND: u16 = (1 << 13) - 1;

/// A single Cicero instruction.
///
/// `PC` below is the thread's program counter, `cc` its pointer into the
/// input stream (the *current character*). Semantics follow Table 1 of the
/// paper exactly:
///
/// | Instruction        | Effect                                                        |
/// |--------------------|---------------------------------------------------------------|
/// | `MatchAny`         | `PC+1`, `cc+1`                                                |
/// | `Match(op)`        | if `op == *cc` then `PC+1`, `cc+1`; else kill the thread      |
/// | `NotMatch(op)`     | if `op != *cc` then `PC+1` (cc **unchanged**); else kill      |
/// | `Split(op)`        | produce two threads: `PC+1` and `op`, both at the same `cc`   |
/// | `Jump(op)`         | `PC = op`                                                     |
/// | `Accept`           | accept iff `cc` is at the end of the input                    |
/// | `AcceptPartial`    | accept at any point of the input                              |
/// | `AcceptPartialId`  | as `AcceptPartial`, reporting the matched RE's identifier     |
///
/// `NotMatch` deliberately does **not** advance through the input: negated
/// character groups `[^ab]` lower to
/// `NotMatch(a); NotMatch(b); MatchAny` (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Instruction {
    /// Consume any character.
    MatchAny,
    /// Consume the given character, or kill the thread.
    Match(u8),
    /// Assert the current character is *not* the given one; does not consume.
    NotMatch(u8),
    /// Fork the thread: continue at `PC+1` and at the absolute target.
    Split(u16),
    /// Unconditional jump to the absolute target.
    Jump(u16),
    /// Accept only when the whole input has been consumed (exact match mode).
    Accept,
    /// Accept at any point in the input (partial match mode).
    AcceptPartial,
    /// Accept at any point in the input and report which RE of a
    /// multi-matching set matched — the ISA extension sketched in the
    /// paper's Future Work ("extend the current ISA for acceptance
    /// instructions to support RE identification in multi-matching
    /// scenarios"). The identifier occupies the 13-bit operand.
    AcceptPartialId(u16),
}

/// The 3-bit opcode space of the 16-bit binary encoding.
///
/// Values match the discriminants used by [`crate::encoding`]. Slot 4,
/// reserved in the original ISA, now carries the multi-matching
/// acceptance extension from the paper's Future Work section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Opcode {
    /// [`Instruction::Accept`].
    Accept = 0,
    /// [`Instruction::Split`].
    Split = 1,
    /// [`Instruction::Match`].
    Match = 2,
    /// [`Instruction::Jump`].
    Jump = 3,
    /// [`Instruction::AcceptPartialId`] — the multi-matching extension
    /// (this slot was reserved in the original ISA).
    AcceptPartialId = 4,
    /// [`Instruction::MatchAny`].
    MatchAny = 5,
    /// [`Instruction::AcceptPartial`].
    AcceptPartial = 6,
    /// [`Instruction::NotMatch`].
    NotMatch = 7,
}

impl Opcode {
    /// All opcodes that correspond to a real instruction.
    pub const ALL: [Opcode; 8] = [
        Opcode::Accept,
        Opcode::Split,
        Opcode::Match,
        Opcode::Jump,
        Opcode::AcceptPartialId,
        Opcode::MatchAny,
        Opcode::AcceptPartial,
        Opcode::NotMatch,
    ];

    /// Decode a 3-bit field into an opcode.
    ///
    /// Returns `None` for values above 7 (impossible for a 3-bit field).
    pub fn from_bits(bits: u8) -> Option<Opcode> {
        Some(match bits {
            0 => Opcode::Accept,
            1 => Opcode::Split,
            2 => Opcode::Match,
            3 => Opcode::Jump,
            4 => Opcode::AcceptPartialId,
            5 => Opcode::MatchAny,
            6 => Opcode::AcceptPartial,
            7 => Opcode::NotMatch,
            _ => return None,
        })
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Opcode::Accept => "ACCEPT",
            Opcode::Split => "SPLIT",
            Opcode::Match => "MATCH",
            Opcode::Jump => "JMP",
            Opcode::AcceptPartialId => "ACCEPT_ID",
            Opcode::MatchAny => "MATCH_ANY",
            Opcode::AcceptPartial => "ACCEPT_PARTIAL",
            Opcode::NotMatch => "NOT_MATCH",
        };
        f.write_str(name)
    }
}

impl Instruction {
    /// The opcode of this instruction.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instruction::MatchAny => Opcode::MatchAny,
            Instruction::Match(_) => Opcode::Match,
            Instruction::NotMatch(_) => Opcode::NotMatch,
            Instruction::Split(_) => Opcode::Split,
            Instruction::Jump(_) => Opcode::Jump,
            Instruction::Accept => Opcode::Accept,
            Instruction::AcceptPartial => Opcode::AcceptPartial,
            Instruction::AcceptPartialId(_) => Opcode::AcceptPartialId,
        }
    }

    /// The raw 13-bit operand (0 for operand-less instructions).
    pub fn operand(&self) -> u16 {
        match *self {
            Instruction::Match(c) | Instruction::NotMatch(c) => u16::from(c),
            Instruction::Split(t) | Instruction::Jump(t) => t,
            Instruction::AcceptPartialId(id) => id,
            _ => 0,
        }
    }

    /// True for `Accept`, `AcceptPartial` and `AcceptPartialId`.
    pub fn is_acceptance(&self) -> bool {
        matches!(
            self,
            Instruction::Accept | Instruction::AcceptPartial | Instruction::AcceptPartialId(_)
        )
    }

    /// True for `Split` and `Jump`.
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Instruction::Split(_) | Instruction::Jump(_))
    }

    /// True for `MatchAny`, `Match` and `NotMatch`.
    pub fn is_matching(&self) -> bool {
        matches!(self, Instruction::MatchAny | Instruction::Match(_) | Instruction::NotMatch(_))
    }

    /// True if executing this instruction consumes an input character
    /// (advances `cc`). Note `NotMatch` does *not*.
    pub fn consumes_input(&self) -> bool {
        matches!(self, Instruction::MatchAny | Instruction::Match(_))
    }

    /// The control-flow target, if any (`Split`/`Jump`).
    pub fn branch_target(&self) -> Option<u16> {
        match *self {
            Instruction::Split(t) | Instruction::Jump(t) => Some(t),
            _ => None,
        }
    }

    /// Return a copy with the control-flow target replaced.
    ///
    /// # Panics
    ///
    /// Panics if the instruction has no branch target — callers are expected
    /// to have checked [`Instruction::branch_target`] first.
    pub fn with_branch_target(&self, target: u16) -> Instruction {
        match *self {
            Instruction::Split(_) => Instruction::Split(target),
            Instruction::Jump(_) => Instruction::Jump(target),
            other => panic!("instruction {other:?} has no branch target"),
        }
    }
}

impl fmt::Display for Instruction {
    /// Assembly rendering in the Listing-2 style of the paper, e.g.
    /// `SPLIT {5,8}` is printed when the next PC is unknown as `SPLIT 8`;
    /// use [`crate::Program::to_asm`] for the address-annotated listing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instruction::MatchAny => write!(f, "MATCH_ANY"),
            Instruction::Match(c) => write!(f, "MATCH char {}", render_char(c)),
            Instruction::NotMatch(c) => write!(f, "NOT_MATCH char {}", render_char(c)),
            Instruction::Split(t) => write!(f, "SPLIT {t}"),
            Instruction::Jump(t) => write!(f, "JMP to {t}"),
            Instruction::Accept => write!(f, "ACCEPT"),
            Instruction::AcceptPartial => write!(f, "ACCEPT_PARTIAL"),
            Instruction::AcceptPartialId(id) => write!(f, "ACCEPT_ID {id}"),
        }
    }
}

/// Render a byte as a printable character or an escaped hex form.
pub(crate) fn render_char(c: u8) -> String {
    if c.is_ascii_graphic() {
        (c as char).to_string()
    } else {
        format!("0x{c:02x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_bits(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_bits(4), Some(Opcode::AcceptPartialId));
        assert_eq!(Opcode::from_bits(8), None);
    }

    #[test]
    fn classes_partition_the_isa() {
        let samples = [
            Instruction::MatchAny,
            Instruction::Match(b'a'),
            Instruction::NotMatch(b'z'),
            Instruction::Split(3),
            Instruction::Jump(0),
            Instruction::Accept,
            Instruction::AcceptPartial,
            Instruction::AcceptPartialId(7),
        ];
        for ins in samples {
            let classes = [ins.is_matching(), ins.is_control_flow(), ins.is_acceptance()];
            assert_eq!(
                classes.iter().filter(|c| **c).count(),
                1,
                "{ins:?} must belong to exactly one class"
            );
        }
    }

    #[test]
    fn not_match_does_not_consume() {
        assert!(Instruction::Match(b'a').consumes_input());
        assert!(Instruction::MatchAny.consumes_input());
        assert!(!Instruction::NotMatch(b'a').consumes_input());
        assert!(!Instruction::Split(0).consumes_input());
    }

    #[test]
    fn branch_target_replacement() {
        assert_eq!(Instruction::Split(3).with_branch_target(9), Instruction::Split(9));
        assert_eq!(Instruction::Jump(3).with_branch_target(0), Instruction::Jump(0));
    }

    #[test]
    #[should_panic(expected = "no branch target")]
    fn branch_target_replacement_rejects_match() {
        let _ = Instruction::Match(b'x').with_branch_target(1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Instruction::Match(b'a').to_string(), "MATCH char a");
        assert_eq!(Instruction::Match(0x07).to_string(), "MATCH char 0x07");
        assert_eq!(Instruction::Split(12).to_string(), "SPLIT 12");
        assert_eq!(Instruction::Jump(3).to_string(), "JMP to 3");
        assert_eq!(Instruction::AcceptPartial.to_string(), "ACCEPT_PARTIAL");
    }
}
