//! Shard-merge determinism and crash-robustness tests.
//!
//! The contract of the sharded metrics store: K threads hammering one
//! collector concurrently must merge into *exactly* the registry you'd
//! get applying the same ops sequentially — byte-identical summary and
//! JSONL output — and a panicking worker thread must never lose its
//! already-recorded values or wedge the collector.
//!
//! Observed values are kept integral so f64 addition is exact and
//! order-independent; gauges are owned by a single thread each (a
//! last-write-wins race between threads has no sequential analogue).

use proptest::prelude::*;

use cicero_telemetry::Telemetry;

/// One metric operation, tagged with the thread that owns it.
#[derive(Debug, Clone)]
enum Op {
    CounterAdd {
        name: usize,
        delta: u64,
    },
    /// Gauges are per-thread-owned: the name is suffixed with the
    /// owning thread so sequential and concurrent application agree.
    GaugeSet {
        name: usize,
        value: i32,
    },
    Observe {
        name: usize,
        value: u32,
    },
}

const BOUNDS: &[f64] = &[4.0, 64.0, 1024.0];

fn apply(telemetry: &Telemetry, thread: usize, op: &Op) {
    match op {
        Op::CounterAdd { name, delta } => {
            telemetry.counter_add(&format!("test.counter_{name}"), *delta);
        }
        Op::GaugeSet { name, value } => {
            telemetry.gauge_set(&format!("test.gauge_{thread}_{name}"), f64::from(*value));
        }
        Op::Observe { name, value } => {
            telemetry.observe_with(&format!("test.hist_{name}"), f64::from(*value), BOUNDS);
        }
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4, 0u64..100).prop_map(|(name, delta)| Op::CounterAdd { name, delta }),
        (0usize..3, -50i32..50).prop_map(|(name, value)| Op::GaugeSet { name, value }),
        (0usize..3, 0u32..5000).prop_map(|(name, value)| Op::Observe { name, value }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// K concurrent writer threads vs. the same ops applied on one
    /// thread: merged summary and JSONL must be byte-identical.
    #[test]
    fn concurrent_merge_is_byte_identical_to_sequential(
        per_thread in prop::collection::vec(
            prop::collection::vec(op_strategy(), 0..40),
            2..5,
        )
    ) {
        let concurrent = Telemetry::new();
        std::thread::scope(|scope| {
            for (thread, ops) in per_thread.iter().enumerate() {
                let telemetry = concurrent.clone();
                scope.spawn(move || {
                    for op in ops {
                        apply(&telemetry, thread, op);
                    }
                });
            }
        });

        let sequential = Telemetry::new();
        for (thread, ops) in per_thread.iter().enumerate() {
            for op in ops {
                apply(&sequential, thread, op);
            }
        }

        prop_assert_eq!(concurrent.render_summary(), sequential.render_summary());
        prop_assert_eq!(concurrent.render_jsonl(), sequential.render_jsonl());
    }
}

/// A worker thread that panics mid-write must not lose the values it
/// already recorded, and the collector must stay fully readable.
#[test]
fn panicked_worker_shard_still_merges() {
    let telemetry = Telemetry::new();
    telemetry.counter_add("test.survivor", 1);

    let handle = {
        let telemetry = telemetry.clone();
        std::thread::spawn(move || {
            telemetry.counter_add("test.survivor", 10);
            telemetry.observe_with("test.hist", 3.0, &[4.0]);
            panic!("worker dies after recording");
        })
    };
    assert!(handle.join().is_err(), "worker should have panicked");

    assert_eq!(telemetry.counter("test.survivor"), 11);
    let hist = telemetry.histogram("test.hist").expect("histogram from dead thread");
    assert_eq!(hist.count, 1);
    let summary = telemetry.render_summary();
    assert!(summary.contains("test.survivor"), "{summary}");
}

/// Poisoning the span/event mutex (a panic while a span guard is live)
/// must not wedge metrics or sinks: every lock recovers from poison.
#[test]
fn poisoned_collector_stays_usable() {
    let telemetry = Telemetry::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _span = telemetry.span("doomed");
        panic!("panic while span is open");
    }));
    assert!(result.is_err());

    // The span mutex was poisoned mid-drop; all APIs must still work.
    telemetry.counter_add("test.after_poison", 2);
    {
        let span = telemetry.span("after");
        span.annotate("ok", true);
    }
    assert_eq!(telemetry.counter("test.after_poison"), 2);
    let summary = telemetry.render_summary();
    assert!(summary.contains("after"), "{summary}");
    assert!(!telemetry.render_jsonl().is_empty());
}
