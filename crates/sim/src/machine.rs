//! The cycle-by-cycle machine model.
//!
//! # Model summary
//!
//! Threads are `(PC, position)` pairs. Each engine keeps one FIFO per
//! window slot (position modulo `2^CC_ID`) with a Thompson-set duplicate
//! filter, and each core runs a three-stage pipeline:
//!
//! * **S1 fetch** — pop a thread, look up its PC in the core's
//!   direct-mapped icache; a miss stalls the core for the fill latency of
//!   the engine's central instruction memory (BRAM-banked, one fill port
//!   per core);
//! * **S2 execute** — matching ops consume a character and route the
//!   successor to the next window slot; control-flow ops stay in the same
//!   slot; acceptance halts the whole machine;
//! * **S3 second push** — a `Split`'s second target is pushed one cycle
//!   after the first, occupying the extra stage (Figure 4's `S3` row).
//!
//! A queued successor produced one cycle is poppable the next; a thread's
//! *single* successor is forwarded straight back into an idle pipeline,
//! reproducing the back-to-back dependent executions visible in
//! Figure 4's S2 rows.
//!
//! **Lockstep window**: live threads span at most `2^CC_ID` consecutive
//! positions. A match whose successor would leave the window re-queues and
//! retries (`window_stall_cycles`), which models FIFO-slot backpressure
//! while guaranteeing the oldest position always progresses.
//!
//! **Routing**: in the old organization every new thread is offered to the
//! distributed balancer, which offloads to the ring successor when the
//! local engine holds more queued threads (≥ 2-cycle transfer). In the new
//! organization control-flow successors stay on their core, match
//! successors move to the adjacent FIFO ("a thread coming from FIFO N …
//! can only end up in FIFO N or N+1"), and only the last core may offload
//! to the ring.

use std::collections::{BTreeMap, HashMap, VecDeque};

use cicero_isa::{Instruction, Program};

use crate::cache::ICache;
use crate::config::{ArchConfig, Organization};
use crate::stats::ExecReport;
use crate::trace::{TraceEvent, TraceNote};

/// Run `program` over `input` on the configured architecture.
pub fn simulate(program: &Program, input: &[u8], config: &ArchConfig) -> ExecReport {
    Machine::new(program, config.clone()).run(input)
}

/// Like [`simulate`], but folding the run's counters and histograms into
/// `telemetry` (see [`ExecReport::record_into`]).
pub fn simulate_with_telemetry(
    program: &Program,
    input: &[u8],
    config: &ArchConfig,
    telemetry: &cicero_telemetry::Telemetry,
) -> ExecReport {
    let mut machine = Machine::new(program, config.clone());
    machine.attach_telemetry(telemetry.clone());
    machine.run(input)
}

/// Run one program over many inputs (e.g. the benchmark chunks of one RE),
/// keeping the instruction caches warm between runs as the hardware does —
/// reprogramming flushes the caches, streaming new data does not.
///
/// Between chunks the engine's prefetcher refreshes each core's cache from
/// the resident program image ([`Machine::prefetch_icache`]), so every run
/// starts from the same canonical warm state. This makes each report a
/// function of `(program, input, config)` alone — batch results are
/// independent of input order and of how a batch is partitioned across
/// workers, which is what lets [`simulate_batch_parallel`] return
/// byte-identical reports for any worker count.
pub fn simulate_batch(
    program: &Program,
    inputs: &[Vec<u8>],
    config: &ArchConfig,
) -> Vec<ExecReport> {
    let mut machine = Machine::new(program, config.clone());
    inputs
        .iter()
        .map(|input| {
            machine.prefetch_icache();
            machine.run(input)
        })
        .collect()
}

/// Per-worker accounting from one [`simulate_batch_parallel_stats`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Worker index within the pool (0-based).
    pub worker: usize,
    /// Inputs this worker simulated.
    pub inputs: usize,
    /// Simulated cycles across those inputs.
    pub cycles: u64,
    /// Instructions executed across those inputs.
    pub instructions: u64,
    /// Instruction-cache hits across those inputs.
    pub icache_hits: u64,
    /// Instruction-cache misses across those inputs.
    pub icache_misses: u64,
}

impl WorkerStats {
    /// Fold one finished run into this worker's totals.
    pub fn absorb(&mut self, report: &ExecReport) {
        self.inputs += 1;
        self.cycles += report.cycles;
        self.instructions += report.instructions;
        self.icache_hits += report.icache_hits;
        self.icache_misses += report.icache_misses;
    }
}

/// Like [`simulate_batch`], but spreading the inputs over a fixed pool of
/// `jobs` OS threads. Each worker owns its own [`Machine`] (its caches
/// stay warm across the inputs it serves, as on hardware where each board
/// streams its share of the traffic) and pulls the next input index from a
/// shared work queue, so a slow chunk never idles the other workers.
///
/// The merged reports come back in input order and are byte-identical to
/// [`simulate_batch`]'s for every `jobs` value: per-run prefetch makes
/// each report depend only on `(program, input, config)`, never on which
/// worker ran it or what that worker ran before.
///
/// `jobs` is clamped to `1..=inputs.len()`; `jobs <= 1` runs inline
/// without spawning.
pub fn simulate_batch_parallel(
    program: &Program,
    inputs: &[Vec<u8>],
    config: &ArchConfig,
    jobs: usize,
) -> Vec<ExecReport> {
    simulate_batch_parallel_stats(program, inputs, config, jobs).0
}

/// [`simulate_batch_parallel`] plus per-worker statistics (one
/// [`WorkerStats`] per pool thread, in worker order), for the runtime's
/// `runtime.*` telemetry counters.
pub fn simulate_batch_parallel_stats(
    program: &Program,
    inputs: &[Vec<u8>],
    config: &ArchConfig,
    jobs: usize,
) -> (Vec<ExecReport>, Vec<WorkerStats>) {
    let jobs = jobs.clamp(1, inputs.len().max(1));
    if jobs <= 1 {
        let mut stats = WorkerStats::default();
        let reports = simulate_batch(program, inputs, config);
        for report in &reports {
            stats.absorb(report);
        }
        return (reports, vec![stats]);
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut per_worker: Vec<(Vec<(usize, ExecReport)>, WorkerStats)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|worker| {
                    let next = &next;
                    let config = config.clone();
                    scope.spawn(move || {
                        let mut machine = Machine::new(program, config);
                        let mut out = Vec::new();
                        let mut stats = WorkerStats { worker, ..WorkerStats::default() };
                        loop {
                            let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some(input) = inputs.get(index) else { break };
                            machine.prefetch_icache();
                            let report = machine.run(input);
                            stats.absorb(&report);
                            out.push((index, report));
                        }
                        (out, stats)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
    // Deterministic merge: reports go back to their input slots; worker
    // stats stay in worker order.
    let mut reports = vec![ExecReport::default(); inputs.len()];
    let mut stats = Vec::with_capacity(jobs);
    for (chunk, worker_stats) in per_worker.drain(..) {
        for (index, report) in chunk {
            reports[index] = report;
        }
        stats.push(worker_stats);
    }
    (reports, stats)
}

/// Source of input bytes for the machine: a whole in-memory slice, or the
/// sliding window of a [`StreamBuffer`] during streaming execution.
///
/// `byte_at(pos)` returns `None` at (and past) end of input — exactly
/// `input.get(pos).copied()` for a slice. A streaming source must keep
/// every byte the live window can still reach; the machine only ever reads
/// positions of currently live threads, which span at most one lockstep
/// window starting at the oldest live position.
///
/// [`StreamBuffer`]: crate::stream::StreamBuffer
pub trait InputRead {
    /// The byte at absolute position `pos`, or `None` at end of input.
    fn byte_at(&self, pos: usize) -> Option<u8>;
}

impl InputRead for [u8] {
    fn byte_at(&self, pos: usize) -> Option<u8> {
        self.get(pos).copied()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Thread {
    pc: u16,
    pos: usize,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    pc: u16,
    pos: usize,
}

#[derive(Debug)]
struct Core {
    icache: ICache,
    s1: Option<Slot>,
    s2: Option<Slot>,
    s3: Option<Slot>,
    stall_until: u64,
}

impl Core {
    fn new(config: &ArchConfig) -> Core {
        Core { icache: ICache::new(&config.cache), s1: None, s2: None, s3: None, stall_until: 0 }
    }

    fn idle(&self) -> bool {
        self.s1.is_none() && self.s2.is_none() && self.s3.is_none()
    }
}

#[derive(Debug)]
struct Engine {
    cores: Vec<Core>,
    /// Per-position thread queues (the FIFOs, keyed by absolute position).
    queues: BTreeMap<usize, VecDeque<u16>>,
    /// Thompson duplicate filter: per position, a PC bitset.
    seen: HashMap<usize, Vec<u64>>,
    /// Total queued threads (the balancer's load metric).
    queued: usize,
}

impl Engine {
    fn new(config: &ArchConfig) -> Engine {
        Engine {
            cores: (0..config.cores_per_engine).map(|_| Core::new(config)).collect(),
            queues: BTreeMap::new(),
            seen: HashMap::new(),
            queued: 0,
        }
    }
}

/// How a pushed thread reached the queues, for routing and dedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PushKind {
    /// Same-position successor (split/jump/not-match).
    Control,
    /// Next-position successor (match/match-any).
    Consume,
    /// Window-blocked retry: bypasses the duplicate filter.
    Requeue,
}

/// A cycle-accurate Cicero machine bound to one program and input.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    config: ArchConfig,
    engines: Vec<Engine>,
    /// Scheduled deliveries: cycle → (engine, thread).
    pending: BTreeMap<u64, Vec<(usize, Thread)>>,
    /// Live threads per position (global, drives the window base).
    counts: BTreeMap<usize, usize>,
    live: usize,
    cycle: u64,
    report: ExecReport,
    accepted: Option<usize>,
    matched_id: Option<u16>,
    /// Load snapshot taken at the start of each cycle.
    loads: Vec<usize>,
    /// Pipeline trace, when enabled via [`Machine::run_traced`].
    trace: Option<Vec<TraceEvent>>,
    /// Telemetry collector; every finished run is folded into it.
    telemetry: Option<cicero_telemetry::Telemetry>,
    /// Cumulative icache counters snapshotted at [`Machine::begin`]; the
    /// per-run `icache_*` report fields are the delta beyond this.
    icache_baseline: crate::cache::CacheCounters,
}

impl<'p> Machine<'p> {
    /// Create a machine for the given program and configuration.
    pub fn new(program: &'p Program, config: ArchConfig) -> Machine<'p> {
        // A one-slot window (`CC_ID = 0`) livelocks by construction: a
        // consuming match's successor lands at `pos + 1`, which can never
        // fit inside `[base, base + 1)`, so the thread requeues until the
        // cycle limit. Fail loudly instead of spinning for `max_cycles`.
        assert!(
            config.window() >= 2,
            "cc_id_bits must be >= 1: a window of one character cannot accept a consuming \
             successor, so the FIFO window deadlocks"
        );
        let engines = (0..config.engines).map(|_| Engine::new(&config)).collect();
        Machine {
            program,
            config,
            engines,
            pending: BTreeMap::new(),
            counts: BTreeMap::new(),
            live: 0,
            cycle: 0,
            report: ExecReport::default(),
            accepted: None,
            matched_id: None,
            loads: Vec::new(),
            trace: None,
            telemetry: None,
            icache_baseline: crate::cache::CacheCounters::default(),
        }
    }

    /// Attach a telemetry collector: each subsequent [`Machine::run`]
    /// emits a `sim.run` span and folds its [`ExecReport`] into the
    /// collector's `sim.*` histograms and counters.
    pub fn attach_telemetry(&mut self, telemetry: cicero_telemetry::Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Refresh every core's instruction cache from the resident program
    /// image (see [`ICache::prefetch`]): tags end up in the canonical warm
    /// state regardless of what ran before, counters are untouched. Batch
    /// drivers call this between inputs — streaming new data never flushes
    /// the caches, and the refresh is free because chunk arrival latency
    /// dominates the (already resident) image walk.
    pub fn prefetch_icache(&mut self) {
        let program_len = self.program.len();
        for engine in &mut self.engines {
            for core in &mut engine.cores {
                core.icache.prefetch(program_len);
            }
        }
    }

    /// Lifetime-cumulative instruction-cache counters summed over every
    /// core — the single source of truth the per-run `icache_*` report
    /// fields are derived from (by snapshot/delta around each run).
    pub fn icache_counters(&self) -> crate::cache::CacheCounters {
        let mut total = crate::cache::CacheCounters::default();
        for engine in &self.engines {
            for core in &engine.cores {
                let counters = core.icache.counters();
                total.hits += counters.hits;
                total.misses += counters.misses;
            }
        }
        total
    }

    /// Reset all dynamic state (threads, queues, filters, pipelines) while
    /// keeping instruction-cache contents warm.
    fn reset(&mut self) {
        self.pending.clear();
        self.counts.clear();
        self.live = 0;
        self.cycle = 0;
        self.report = ExecReport::default();
        self.accepted = None;
        self.matched_id = None;
        self.loads.clear();
        if let Some(trace) = self.trace.as_mut() {
            trace.clear();
        }
        for engine in &mut self.engines {
            engine.queues.clear();
            engine.seen.clear();
            engine.queued = 0;
            for core in &mut engine.cores {
                core.s1 = None;
                core.s2 = None;
                core.s3 = None;
                core.stall_until = 0;
            }
        }
    }

    /// Run with pipeline tracing enabled, returning the report plus every
    /// stage event (see [`crate::trace::render_trace`] for the Figure-4
    /// style rendering). Tracing records events but never alters timing.
    pub fn run_traced(&mut self, input: &[u8]) -> (ExecReport, Vec<TraceEvent>) {
        self.trace = Some(Vec::new());
        let report = self.run(input);
        let events = self.trace.take().expect("trace enabled above");
        (report, events)
    }

    /// Run the program over one input, seeding the initial thread (PC 0,
    /// position 0) in engine 0. Can be called repeatedly; instruction
    /// caches stay warm across calls.
    pub fn run(&mut self, input: &[u8]) -> ExecReport {
        let run_span = self.telemetry.as_ref().map(|t| {
            let span = t.span("sim.run");
            span.annotate("input_len", input.len());
            span.annotate("config", self.config.name());
            span
        });
        self.begin();
        self.drive(input, None);
        let report = self.finalize();
        if let Some(span) = run_span {
            span.annotate("cycles", report.cycles);
            span.annotate("accepted", report.accepted);
        }
        report
    }

    /// Start a run: reset dynamic state, snapshot the icache counters, and
    /// seed the initial thread (PC 0, position 0) in engine 0. Paired with
    /// [`Machine::drive`] and [`Machine::finalize`]; [`Machine::run`] is
    /// the three in sequence over a whole in-memory input.
    pub(crate) fn begin(&mut self) {
        self.reset();
        // Per-run cache accounting is a delta over the cores' cumulative
        // counters: the tags stay warm across runs, the counters are never
        // reset, and this run's hits/misses are whatever the cores
        // accumulate beyond this snapshot.
        self.icache_baseline = self.icache_counters();
        self.push(0, Thread { pc: 0, pos: 0 }, PushKind::Control, 0);
    }

    /// Execute cycles until the run concludes (returns `true`: acceptance,
    /// a dead thread set, or the cycle limit) or — when `pause_before` is
    /// `Some(available)` — until some live thread sits at a position `>=
    /// available` (returns `false`).
    ///
    /// Pausing happens *before* the blocked cycle executes and mutates no
    /// state, so resuming with more input replays the exact cycle sequence
    /// of a whole-input run: streamed reports are byte-identical to
    /// [`Machine::run`]'s for every chunking. The pause test is sound
    /// because every position a core can read this cycle belongs to a live
    /// thread, and `counts` tracks all live threads (queued, scheduled,
    /// and in-pipeline).
    pub(crate) fn drive<I: InputRead + ?Sized>(
        &mut self,
        input: &I,
        pause_before: Option<usize>,
    ) -> bool {
        loop {
            if self.cycle >= self.config.max_cycles {
                self.report.hit_cycle_limit = true;
                return true;
            }
            self.deliver();
            if self.live == 0 {
                return true;
            }
            if let Some(available) = pause_before {
                let frontier = self.counts.keys().next_back().copied();
                if frontier.is_some_and(|pos| pos >= available) {
                    return false;
                }
            }
            // Load = queued + in-flight work; counting pipeline occupancy
            // lets the balancer see a busy neighbour before its FIFOs
            // back up, which is what pushes distribution past the first
            // ring hop.
            self.loads = self
                .engines
                .iter()
                .map(|e| {
                    e.queued
                        + e.cores
                            .iter()
                            .map(|c| {
                                usize::from(c.s1.is_some())
                                    + usize::from(c.s2.is_some())
                                    + usize::from(c.s3.is_some())
                            })
                            .sum::<usize>()
                })
                .collect();
            let engines = self.engines.len();
            'cores: for e in 0..engines {
                for c in 0..self.engines[e].cores.len() {
                    self.step_core(e, c, input);
                    if self.accepted.is_some() {
                        break 'cores;
                    }
                }
            }
            self.cycle += 1;
            if self.accepted.is_some() {
                return true;
            }
            self.collect_garbage();
        }
    }

    /// Fill in the report's summary fields (cycle count, verdict, icache
    /// deltas) and fold the run into the attached telemetry. Returns the
    /// completed report.
    pub(crate) fn finalize(&mut self) -> ExecReport {
        let icache_now = self.icache_counters();
        self.report.icache_hits = icache_now.hits - self.icache_baseline.hits;
        self.report.icache_misses = icache_now.misses - self.icache_baseline.misses;
        self.report.cycles = self.cycle;
        self.report.accepted = self.accepted.is_some();
        self.report.match_position = self.accepted;
        self.report.matched_id = self.matched_id;
        if let Some(telemetry) = &self.telemetry {
            self.report.record_into(telemetry);
        }
        self.report
    }

    /// The oldest live position (the lockstep window's base), or `None`
    /// when no thread is live. Bytes below the base can never be read
    /// again — positions only increase — so a streaming buffer may drop
    /// them.
    pub(crate) fn window_base(&self) -> Option<usize> {
        self.counts.keys().next().copied()
    }

    /// Move due deliveries into engine queues.
    fn deliver(&mut self) {
        let due: Vec<u64> = self.pending.range(..=self.cycle).map(|(k, _)| *k).collect();
        for key in due {
            for (engine_index, thread) in self.pending.remove(&key).expect("key present") {
                let engine = &mut self.engines[engine_index];
                engine.queues.entry(thread.pos).or_default().push_back(thread.pc);
                engine.queued += 1;
            }
        }
    }

    /// Advance one core by one cycle.
    fn step_core<I: InputRead + ?Sized>(&mut self, e: usize, c: usize, input: &I) {
        let window = self.config.window();
        let base = match self.counts.keys().next() {
            Some(b) => *b,
            None => return,
        };

        // Split-borrow the engine so the core and the queues are
        // independently mutable.
        let engine = &mut self.engines[e];
        let Engine { cores, queues, seen, queued } = engine;
        let core = &mut cores[c];

        if self.cycle < core.stall_until {
            self.report.memory_stall_cycles += 1;
            return;
        }

        // Local effect buffers (applied after the borrows end).
        let mut pushes: Vec<(Thread, PushKind)> = Vec::new();
        let mut retires: Vec<usize> = Vec::new();
        let mut accepted: Option<usize> = None;
        let mut accepted_id: Option<u16> = None;
        let tracing = self.trace.is_some();
        let mut events: Vec<TraceEvent> = Vec::new();
        let cycle = self.cycle;
        let mut record = |stage: u8, pc: u16, pos: usize, note: TraceNote| {
            events.push(TraceEvent { cycle, engine: e, core: c, stage, pc, pos, note });
        };
        // S2 → S1 forwarding: a thread's first successor re-enters this
        // core's pipeline directly (Figure 4 shows dependent instructions
        // in back-to-back S2 slots). In the new organization a consuming
        // successor belongs to the adjacent core, so only control-flow
        // successors forward.
        let mut forward: Option<(Thread, PushKind)> = None;

        // S3: the split's second target.
        if let Some(slot) = core.s3.take() {
            match self.program.get(slot.pc) {
                Some(Instruction::Split(target)) => {
                    if tracing {
                        record(3, slot.pc, slot.pos, TraceNote::SecondTarget(target));
                    }
                    pushes.push((Thread { pc: target, pos: slot.pos }, PushKind::Control));
                    retires.push(slot.pos);
                }
                other => unreachable!("S3 holds a split, found {other:?}"),
            }
        }

        // S1 → S2: a fetched thread advances to execute unless a forwarded
        // thread already occupies S2.
        if core.s2.is_none() {
            core.s2 = core.s1.take();
        }

        // S2: execute.
        if let Some(slot) = core.s2 {
            let ins = self.program.get(slot.pc).expect("validated program");
            let ch = input.byte_at(slot.pos);
            self.report.instructions += 1;
            match ins {
                Instruction::Split(target) => {
                    if tracing {
                        record(2, slot.pc, slot.pos, TraceNote::SplitTo(target));
                    }
                    forward = Some((Thread { pc: slot.pc + 1, pos: slot.pos }, PushKind::Control));
                    core.s3 = Some(slot);
                }
                Instruction::Jump(target) => {
                    if tracing {
                        record(2, slot.pc, slot.pos, TraceNote::Jumped(target));
                    }
                    forward = Some((Thread { pc: target, pos: slot.pos }, PushKind::Control));
                    retires.push(slot.pos);
                }
                Instruction::Match(_) | Instruction::MatchAny => {
                    let matched = match ins {
                        Instruction::Match(expected) => ch == Some(expected),
                        _ => ch.is_some(),
                    };
                    if matched {
                        if slot.pos + 1 >= base + window {
                            // FIFO-slot backpressure: retry until the
                            // window slides.
                            if tracing {
                                record(2, slot.pc, slot.pos, TraceNote::Requeued);
                            }
                            self.report.window_stall_cycles += 1;
                            self.report.instructions -= 1; // not executed
                            pushes.push((Thread { pc: slot.pc, pos: slot.pos }, PushKind::Requeue));
                        } else {
                            if tracing {
                                record(2, slot.pc, slot.pos, TraceNote::Matched);
                            }
                            forward = Some((
                                Thread { pc: slot.pc + 1, pos: slot.pos + 1 },
                                PushKind::Consume,
                            ));
                            retires.push(slot.pos);
                        }
                    } else {
                        if tracing {
                            record(2, slot.pc, slot.pos, TraceNote::Killed);
                        }
                        retires.push(slot.pos); // thread killed
                    }
                }
                Instruction::NotMatch(unexpected) => {
                    let pass = ch.is_some() && ch != Some(unexpected);
                    if tracing {
                        record(
                            2,
                            slot.pc,
                            slot.pos,
                            if pass { TraceNote::Matched } else { TraceNote::Killed },
                        );
                    }
                    if pass {
                        forward =
                            Some((Thread { pc: slot.pc + 1, pos: slot.pos }, PushKind::Control));
                    }
                    retires.push(slot.pos);
                }
                Instruction::Accept => {
                    if ch.is_none() {
                        accepted = Some(slot.pos);
                    }
                    if tracing {
                        let note =
                            if ch.is_none() { TraceNote::Accepted } else { TraceNote::Killed };
                        record(2, slot.pc, slot.pos, note);
                    }
                    retires.push(slot.pos);
                }
                Instruction::AcceptPartial => {
                    if tracing {
                        record(2, slot.pc, slot.pos, TraceNote::Accepted);
                    }
                    accepted = Some(slot.pos);
                    retires.push(slot.pos);
                }
                Instruction::AcceptPartialId(id) => {
                    if tracing {
                        record(2, slot.pc, slot.pos, TraceNote::Accepted);
                    }
                    accepted = Some(slot.pos);
                    accepted_id = Some(id);
                    retires.push(slot.pos);
                }
            }
            core.s2 = None;
        }

        // Fill: a forwarded successor goes straight back into S2 (its
        // fetch overlapped with execution — Figure 4 shows dependent
        // instructions in back-to-back S2 slots); popped threads fetch
        // through S1.
        if let Some((thread, kind)) = forward.take() {
            let eligible = match self.config.organization {
                // The time-multiplexed core owns every FIFO: any single
                // successor can re-enter the pipeline directly.
                Organization::Old => true,
                // A consuming successor belongs to the adjacent core.
                Organization::New => kind == PushKind::Control,
            };
            // Forward only into an idle pipeline: if S1 holds a fetched
            // thread, bypassing it every cycle would starve the FIFOs (the
            // hardware interleaves FIFO pops with in-flight successors, as
            // Figure 4's old-engine rows show).
            if !eligible || core.s2.is_some() || core.s1.is_some() {
                pushes.push((thread, kind));
            } else {
                // The duplicate filter still applies: the forwarded thread
                // is part of the engine's Thompson set.
                let admitted = if self.config.dedup {
                    let bits = seen
                        .entry(thread.pos)
                        .or_insert_with(|| vec![0u64; self.program.len().div_ceil(64)]);
                    let word = usize::from(thread.pc) / 64;
                    let bit = 1u64 << (thread.pc % 64);
                    if bits[word] & bit != 0 {
                        self.report.deduplicated += 1;
                        false
                    } else {
                        bits[word] |= bit;
                        true
                    }
                } else {
                    true
                };
                if admitted {
                    *self.counts.entry(thread.pos).or_insert(0) += 1;
                    self.live += 1;
                    self.report.peak_threads = self.report.peak_threads.max(self.live);
                    if !core.icache.access(thread.pc) {
                        core.stall_until = self.cycle + 1 + self.config.cache.miss_penalty;
                    }
                    core.s2 = Some(Slot { pc: thread.pc, pos: thread.pos });
                }
            }
        }
        if core.s1.is_none() {
            let position = match self.config.organization {
                Organization::Old => queues.iter().find(|(_, q)| !q.is_empty()).map(|(p, _)| *p),
                Organization::New => {
                    queues.iter().find(|(p, q)| *p % window == c && !q.is_empty()).map(|(p, _)| *p)
                }
            };
            if let Some(pos) = position {
                let queue = queues.get_mut(&pos).expect("position found");
                let pc = queue.pop_front().expect("non-empty");
                if queue.is_empty() {
                    queues.remove(&pos);
                }
                *queued -= 1;
                if !core.icache.access(pc) {
                    core.stall_until = self.cycle + 1 + self.config.cache.miss_penalty;
                }
                if tracing {
                    record(1, pc, pos, TraceNote::Fetched);
                }
                core.s1 = Some(Slot { pc, pos });
            }
        }

        // Apply buffered effects.
        let origin_core = c;
        for (thread, kind) in pushes {
            self.route_and_push(e, origin_core, thread, kind);
        }
        for pos in retires {
            self.retire(pos);
        }
        if let Some(pos) = accepted {
            self.accepted = Some(pos);
            self.matched_id = accepted_id;
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.extend(events);
        }
    }

    /// Decide the destination engine and schedule the push.
    fn route_and_push(&mut self, e: usize, origin_core: usize, thread: Thread, kind: PushKind) {
        let next_engine = (e + 1) % self.engines.len();
        let (dest, latency) = match self.config.organization {
            Organization::Old => {
                // Every novel PC is offered to the distributed balancer.
                let offload = kind != PushKind::Requeue
                    && self.engines.len() > 1
                    && self.loads.get(e).copied().unwrap_or(0)
                        > self.loads.get(next_engine).copied().unwrap_or(0)
                            + self.config.lb_threshold;
                if offload {
                    (next_engine, self.config.lb_latency)
                } else {
                    (e, 1)
                }
            }
            Organization::New => {
                // Only the last core's consuming successors reach the ring.
                let is_last_core = origin_core == self.config.cores_per_engine - 1;
                let offload = kind == PushKind::Consume
                    && is_last_core
                    && self.engines.len() > 1
                    && self.loads.get(e).copied().unwrap_or(0)
                        > self.loads.get(next_engine).copied().unwrap_or(0)
                            + self.config.lb_threshold;
                if offload {
                    (next_engine, self.config.lb_latency)
                } else {
                    (e, 1)
                }
            }
        };
        if dest != e {
            self.report.cross_engine_transfers += 1;
        }
        self.push(dest, thread, kind, self.cycle + latency);
    }

    /// Apply the duplicate filter, account the thread, and schedule its
    /// delivery.
    fn push(&mut self, engine_index: usize, thread: Thread, kind: PushKind, ready_at: u64) {
        if self.config.dedup && kind != PushKind::Requeue {
            let seen = self.engines[engine_index]
                .seen
                .entry(thread.pos)
                .or_insert_with(|| vec![0u64; self.program.len().div_ceil(64)]);
            let word = usize::from(thread.pc) / 64;
            let bit = 1u64 << (thread.pc % 64);
            if seen[word] & bit != 0 {
                self.report.deduplicated += 1;
                return;
            }
            seen[word] |= bit;
        }
        if kind != PushKind::Requeue {
            *self.counts.entry(thread.pos).or_insert(0) += 1;
            self.live += 1;
            self.report.peak_threads = self.report.peak_threads.max(self.live);
        }
        self.pending.entry(ready_at).or_default().push((engine_index, thread));
    }

    /// A thread finished (killed, jumped away, or consumed a character).
    fn retire(&mut self, pos: usize) {
        let count = self.counts.get_mut(&pos).expect("retiring unknown position");
        *count -= 1;
        if *count == 0 {
            self.counts.remove(&pos);
        }
        self.live -= 1;
    }

    /// Drop duplicate-filter state for positions the window slid past.
    fn collect_garbage(&mut self) {
        let Some(base) = self.counts.keys().next().copied() else {
            for engine in &mut self.engines {
                engine.seen.clear();
            }
            return;
        };
        for engine in &mut self.engines {
            if engine.seen.len() > 2 * self.config.window() {
                engine.seen.retain(|pos, _| *pos >= base);
            }
        }
    }

    /// Whether any core holds in-flight work (used by tests).
    pub fn pipelines_empty(&self) -> bool {
        self.engines.iter().all(|e| e.cores.iter().all(Core::idle))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_isa::Instruction::*;

    fn program(instructions: Vec<Instruction>) -> Program {
        Program::from_instructions(instructions).unwrap()
    }

    /// `ab|cd` with implicit `.*`, jump-simplified (Listing 2 right).
    fn ab_or_cd() -> Program {
        program(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            AcceptPartial,
        ])
    }

    fn all_configs() -> Vec<ArchConfig> {
        vec![
            ArchConfig::old_organization(1),
            ArchConfig::old_organization(4),
            ArchConfig::old_organization(9),
            ArchConfig::new_organization(8, 1),
            ArchConfig::new_organization(16, 1),
            ArchConfig::new_organization(8, 4),
        ]
    }

    #[test]
    fn verdicts_match_the_functional_interpreter() {
        let p = ab_or_cd();
        let inputs: Vec<&[u8]> = vec![
            b"ab",
            b"xxabyy",
            b"xxcd",
            b"ac",
            b"",
            b"ba",
            b"zzzzzzzzzzzzzzzzzzzzcd",
            b"aaaaaaaaab",
        ];
        for config in all_configs() {
            for input in &inputs {
                let expected = cicero_isa::accepts(&p, input);
                let report = simulate(&p, input, &config);
                assert_eq!(
                    report.accepted,
                    expected,
                    "{} on {:?}",
                    config.name(),
                    String::from_utf8_lossy(input)
                );
                assert!(!report.hit_cycle_limit);
            }
        }
    }

    #[test]
    fn match_position_agrees_with_interpreter() {
        // Parallel configurations implement *any-match* semantics: they
        // halt on whichever acceptance fires first in hardware time, which
        // need not be the earliest-ending match ("cd" ends at 3, "ab" at
        // 5). The strictly serial configuration preserves position order.
        let p = ab_or_cd();
        let serial = simulate(&p, b"xcdab", &ArchConfig::old_organization(1));
        assert_eq!(serial.match_position, Some(3));
        for config in all_configs() {
            let report = simulate(&p, b"xcdab", &config);
            assert!(
                matches!(report.match_position, Some(3) | Some(5)),
                "{}: {:?}",
                config.name(),
                report.match_position
            );
        }
    }

    #[test]
    #[should_panic(expected = "cc_id_bits must be >= 1")]
    fn a_one_slot_window_is_rejected() {
        // `CC_ID = 0` would livelock (a consume can never fit its
        // successor in a one-slot window), so construction fails loudly.
        let mut config = ArchConfig::old_organization(1);
        config.cc_id_bits = 0;
        let _ = simulate(&ab_or_cd(), b"ab", &config);
    }

    #[test]
    fn acceptance_halts_early() {
        let p = program(vec![Split(2), AcceptPartial, MatchAny, Jump(0)]);
        let input = vec![b'x'; 10_000];
        let report = simulate(&p, &input, &ArchConfig::old_organization(1));
        assert!(report.accepted);
        assert!(report.cycles < 100, "{report:?}");
    }

    #[test]
    fn rejection_consumes_whole_input() {
        // `^zz$` over a long non-matching input dies immediately; `.*zz`
        // scans all of it.
        let anchored = program(vec![Match(b'z'), Match(b'z'), Accept]);
        let scanning =
            program(vec![Split(3), MatchAny, Jump(0), Match(b'z'), Match(b'z'), AcceptPartial]);
        let input = vec![b'a'; 500];
        let quick = simulate(&anchored, &input, &ArchConfig::old_organization(1));
        let slow = simulate(&scanning, &input, &ArchConfig::old_organization(1));
        assert!(!quick.accepted && !slow.accepted);
        assert!(quick.cycles < 20);
        assert!(slow.cycles > 500, "must examine every offset: {slow:?}");
    }

    #[test]
    fn lone_thread_runs_back_to_back_via_forwarding() {
        // Figure 4 shows dependent instructions in consecutive S2 slots:
        // a lone thread's successor re-enters the pipeline directly, so 5
        // instructions cost ~5 cycles plus fill and cold-miss overhead.
        let p = program(vec![Match(b'a'), Match(b'a'), Match(b'a'), Match(b'a'), Accept]);
        let report = simulate(&p, b"aaaa", &ArchConfig::old_organization(1));
        assert!(report.cycles >= 5, "{report:?}");
        assert!(report.cycles < 30, "{report:?}");
    }

    /// A work-heavy pattern: wide alternation keeps many threads alive at
    /// every position (the Protomata4/Brill4 regime where parallel
    /// organizations pay off). Simple patterns are critical-path-bound —
    /// one dependent chain per character — and see little speedup, which
    /// is the expected behaviour, not a modelling gap.
    fn heavy_program() -> Program {
        cicero_core::compile("(abcd|bcda|cdab|dabc|acbd|bdca|cadb|dbac|aabb|ccdd)")
            .unwrap()
            .into_program()
    }

    #[test]
    fn new_organization_overlaps_positions() {
        // Protomata-style class chain: almost-matching input keeps ~5
        // partial-match states alive at every position, so each window
        // character carries real work and the per-character cores overlap.
        let p = cicero_core::compile("[ab][bc][cd][de][ef][fg]").unwrap().into_program();
        let mut input = Vec::new();
        for _ in 0..60 {
            input.extend_from_slice(b"abcde");
        }
        input.extend_from_slice(b"abcdef");
        let old1 = simulate(&p, &input, &ArchConfig::old_organization(1));
        let new8 = simulate(&p, &input, &ArchConfig::new_organization(8, 1));
        assert!(old1.accepted && new8.accepted);
        assert!(
            new8.cycles * 2 < old1.cycles,
            "new 8x1 {} vs old 1x1 {}",
            new8.cycles,
            old1.cycles
        );
    }

    #[test]
    fn cross_engine_transfers_happen_only_with_multiple_engines() {
        let p = heavy_program();
        let input = vec![b'x'; 200];
        let single = simulate(&p, &input, &ArchConfig::old_organization(1));
        assert_eq!(single.cross_engine_transfers, 0);
        let multi = simulate(&p, &input, &ArchConfig::old_organization(4));
        assert!(multi.cross_engine_transfers > 0, "{multi:?}");
    }

    #[test]
    fn old_multi_engine_helps_on_heavy_patterns() {
        // Table 2's regime before the scaling knee: distributing the
        // enumeration across a few engines beats one engine.
        let p = heavy_program();
        let input = vec![b'x'; 300];
        let one = simulate(&p, &input, &ArchConfig::old_organization(1));
        let four = simulate(&p, &input, &ArchConfig::old_organization(4));
        assert!(four.cycles < one.cycles, "1x4 ({}) should beat 1x1 ({})", four.cycles, one.cycles);
    }

    #[test]
    fn simple_patterns_are_critical_path_bound() {
        // With one live thread chain per character, extra cores cannot
        // help much; the paper's Table 2 shows the same saturation.
        let p = ab_or_cd();
        let input = vec![b'x'; 300];
        let old1 = simulate(&p, &input, &ArchConfig::old_organization(1));
        let new8 = simulate(&p, &input, &ArchConfig::new_organization(8, 1));
        let ratio = old1.cycles as f64 / new8.cycles as f64;
        assert!(ratio < 2.0, "unexpectedly large speedup {ratio} on a serial chain");
    }

    #[test]
    fn dedup_bounds_pathological_split_loops() {
        // split 0 -> {1, 2}; jump 2 -> 0: an ε-cycle that only the
        // duplicate filter terminates.
        let p = program(vec![Split(2), Jump(0), Match(b'a'), Jump(0), Accept]);
        let report = simulate(&p, b"aaa", &ArchConfig::old_organization(1));
        assert!(!report.accepted);
        assert!(!report.hit_cycle_limit);
        assert!(report.deduplicated > 0);
    }

    #[test]
    fn cycle_limit_reported_without_dedup() {
        let p = program(vec![Split(2), Jump(0), Match(b'a'), Jump(0), Accept]);
        let mut config = ArchConfig::old_organization(1);
        config.dedup = false;
        config.max_cycles = 5_000;
        let report = simulate(&p, b"aaa", &config);
        assert!(report.hit_cycle_limit);
    }

    #[test]
    fn window_stalls_appear_when_positions_race_ahead() {
        // A program that consumes greedily with no per-position work: the
        // leading position hits the window edge while position `base`
        // lags behind a split burst.
        let p = program(vec![
            Split(3),
            MatchAny,
            Jump(0),
            // wide split fan to keep the base position busy
            Split(5),
            Jump(3),
            Match(b'q'),
            AcceptPartial,
        ]);
        let input = vec![b'x'; 200];
        let report = simulate(&p, &input, &ArchConfig::new_organization(8, 1));
        assert!(!report.accepted);
        // The run must terminate regardless of stalls.
        assert!(!report.hit_cycle_limit);
    }

    #[test]
    fn icache_misses_scale_with_code_spread() {
        // Same language, two layouts: compact loop vs far jumps.
        let compact = program(vec![Split(3), MatchAny, Jump(0), Match(b'z'), AcceptPartial]);
        // Pad with unreachable instructions so the matcher lands on a
        // cache line that aliases the prefix loop's line (default cache: 8
        // lines of 4 → pc 128 maps to index 0, same as pc 0), forcing
        // conflict misses every character.
        let mut far_instrs = vec![Split(128), MatchAny, Jump(0)];
        while far_instrs.len() < 128 {
            far_instrs.push(Match(b'0'));
        }
        far_instrs.push(Match(b'z')); // 128
        far_instrs.push(AcceptPartial); // 129
        let far = program(far_instrs);
        let input = vec![b'a'; 300];
        let c = ArchConfig::old_organization(1);
        let near_r = simulate(&compact, &input, &c);
        let far_r = simulate(&far, &input, &c);
        assert!(far_r.icache_misses > near_r.icache_misses, "near {near_r:?} far {far_r:?}");
        assert!(far_r.cycles > near_r.cycles);
    }

    #[test]
    fn deterministic() {
        let p = ab_or_cd();
        let input = b"xxxxxxxxxxabxxxx";
        for config in all_configs() {
            let a = simulate(&p, input, &config);
            let b = simulate(&p, input, &config);
            assert_eq!(a, b, "{}", config.name());
        }
    }

    #[test]
    fn telemetry_folds_every_run_into_histograms() {
        let p = ab_or_cd();
        let telemetry = cicero_telemetry::Telemetry::new();
        let mut machine = Machine::new(&p, ArchConfig::old_organization(1));
        machine.attach_telemetry(telemetry.clone());
        let first = machine.run(b"xxab");
        machine.run(b"nothing");
        assert_eq!(telemetry.counter("sim.runs"), 2);
        assert_eq!(telemetry.counter("sim.matches"), 1);
        let cycles = telemetry.histogram("sim.cycles").unwrap();
        assert_eq!(cycles.count, 2);
        assert!(cycles.min >= first.cycles.min(1) as f64);
        assert!(telemetry.histogram("sim.icache_hit_rate").unwrap().count == 2);
        let spans = telemetry.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "sim.run").count(), 2);
        let run = spans.iter().find(|s| s.name == "sim.run").unwrap();
        assert!(run.attrs.iter().any(|(k, _)| k == "cycles"));
    }

    #[test]
    fn telemetry_does_not_change_results() {
        let p = heavy_program();
        let input = vec![b'x'; 200];
        for config in all_configs() {
            let plain = simulate(&p, &input, &config);
            let telemetry = cicero_telemetry::Telemetry::new();
            let observed = simulate_with_telemetry(&p, &input, &config, &telemetry);
            assert_eq!(plain, observed, "{}", config.name());
        }
    }

    #[test]
    fn warm_cache_never_lowers_hit_rate_on_identical_inputs() {
        // Re-running the same input in a batch must never lower the
        // icache hit rate: the caches only get warmer (and the per-run
        // prefetch makes repeated runs identical outright).
        let programs = [ab_or_cd(), heavy_program()];
        let input = b"zzabzzcdzzabzzcdzz".to_vec();
        for program in &programs {
            for config in all_configs() {
                let reports = simulate_batch(
                    program,
                    &[input.clone(), input.clone(), input.clone()],
                    &config,
                );
                let cold = simulate(program, &input, &config);
                for pair in reports.windows(2) {
                    assert!(
                        pair[1].icache_hit_rate() >= pair[0].icache_hit_rate(),
                        "{}: hit rate dropped {:?} -> {:?}",
                        config.name(),
                        pair[0],
                        pair[1]
                    );
                }
                assert!(
                    reports[0].icache_hit_rate() >= cold.icache_hit_rate(),
                    "{}: batch run colder than a fresh machine",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn batch_reports_do_not_depend_on_input_order() {
        // The canonical per-run prefetch makes each report a function of
        // (program, input, config) alone.
        let p = heavy_program();
        let inputs: Vec<Vec<u8>> =
            vec![vec![b'x'; 120], b"xxabcdxx".to_vec(), vec![b'a'; 64], b"dbacdbac".to_vec()];
        let mut reversed = inputs.clone();
        reversed.reverse();
        for config in all_configs() {
            let forward = simulate_batch(&p, &inputs, &config);
            let mut backward = simulate_batch(&p, &reversed, &config);
            backward.reverse();
            assert_eq!(forward, backward, "{}", config.name());
        }
    }

    #[test]
    fn parallel_batch_is_byte_identical_to_sequential_for_every_job_count() {
        let p = heavy_program();
        let inputs: Vec<Vec<u8>> = (0..9)
            .map(|i| if i % 3 == 0 { b"xxabcdxx".to_vec() } else { vec![b'x'; 40 + i] })
            .collect();
        for config in [ArchConfig::old_organization(1), ArchConfig::new_organization(8, 1)] {
            let sequential = simulate_batch(&p, &inputs, &config);
            for jobs in 1..=6 {
                let (parallel, stats) = simulate_batch_parallel_stats(&p, &inputs, &config, jobs);
                assert_eq!(parallel, sequential, "jobs={jobs} on {}", config.name());
                assert_eq!(stats.iter().map(|s| s.inputs).sum::<usize>(), inputs.len());
                assert_eq!(
                    stats.iter().map(|s| s.cycles).sum::<u64>(),
                    sequential.iter().map(|r| r.cycles).sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn parallel_batch_handles_degenerate_shapes() {
        let p = ab_or_cd();
        let config = ArchConfig::old_organization(1);
        assert!(simulate_batch_parallel(&p, &[], &config, 4).is_empty());
        let one = simulate_batch_parallel(&p, &[b"ab".to_vec()], &config, 8);
        assert_eq!(one.len(), 1);
        assert!(one[0].accepted);
    }

    #[test]
    fn per_run_icache_counters_are_deltas_of_the_cumulative_ones() {
        // Satellite regression: the per-run report fields must stay
        // consistent with the cores' cumulative counters across repeated
        // runs on one machine (they diverged when both were incremented
        // independently and only one was reset).
        let p = heavy_program();
        let mut machine = Machine::new(&p, ArchConfig::new_organization(8, 1));
        let mut summed = (0u64, 0u64);
        for input in [b"xxabcdxx".as_slice(), b"zzzz", b"xxabcdxx"] {
            let report = machine.run(input);
            summed.0 += report.icache_hits;
            summed.1 += report.icache_misses;
            let cumulative = machine.icache_counters();
            assert_eq!((cumulative.hits, cumulative.misses), summed, "after {input:?}");
        }
    }

    #[test]
    fn exact_accept_requires_end_of_input_on_every_config() {
        let p = program(vec![Match(b'a'), Match(b'b'), Accept]);
        for config in all_configs() {
            assert!(simulate(&p, b"ab", &config).accepted, "{}", config.name());
            assert!(!simulate(&p, b"abx", &config).accepted, "{}", config.name());
            assert!(!simulate(&p, b"b", &config).accepted, "{}", config.name());
        }
    }
}
