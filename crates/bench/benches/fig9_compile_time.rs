//! **Figure 9** — compile time comparison of the old and new compilers,
//! with and without optimizations.
//!
//! Reproduction targets (see DESIGN.md for the Python-substitution
//! caveat): the old compiler's optimizations slow it down by large,
//! suite-dependent factors (the paper reports 6.5x / 2.1x / 39x / 2.2x),
//! while the new compiler's multi-level passes cost only 1.1-1.5x.

use cicero_bench::{banner, f2, paper, suites, CompiledSuite, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 9", "compile time per suite (seconds, log-scale in the paper)", scale);
    let mut table = Table::new(vec![
        "suite",
        "new w/o [s]",
        "new w/ [s]",
        "old w/o [s]",
        "old w/ [s]",
        "old slowdown",
        "(paper)",
        "new overhead",
        "(paper)",
        "new w/o speedup",
        "(paper)",
    ]);
    for (i, bench) in suites(scale).iter().enumerate() {
        // Compile twice and keep the faster run to damp warm-up noise.
        let a = CompiledSuite::build(bench);
        let b = CompiledSuite::build(bench);
        let t: Vec<f64> = (0..4).map(|k| a.compile_seconds[k].min(b.compile_seconds[k])).collect();
        let (new_opt, new_unopt, old_opt, old_unopt) = (t[0], t[1], t[2], t[3]);
        table.row(vec![
            bench.name.to_owned(),
            format!("{:.4}", new_unopt),
            format!("{:.4}", new_opt),
            format!("{:.4}", old_unopt),
            format!("{:.4}", old_opt),
            f2(old_opt / old_unopt),
            format!("({})", f2(paper::OLD_OPT_SLOWDOWN[i])),
            f2(new_opt / new_unopt),
            format!("({})", f2(paper::NEW_OPT_OVERHEAD[i])),
            f2(old_unopt / new_unopt),
            format!("({})", f2(paper::NEW_UNOPT_SPEEDUP[i])),
        ]);
    }
    table.print();
    println!("\n  note: the paper's absolute w/o-optimization gap partly reflects Python vs");
    println!("  C++; here the old compiler's dynamic-object style stands in for it (DESIGN.md)");
}
