//! The Cicero domain-specific instruction set architecture.
//!
//! Cicero ([Parravicini et al., TECS 2021]) executes regular expressions by
//! enumerating the execution threads of a Thompson NFA in lockstep over an
//! input character stream. Its ISA (Table 1 of the CGO'25 paper) has three
//! operation classes:
//!
//! * **matching** — [`Instruction::MatchAny`], [`Instruction::Match`],
//!   [`Instruction::NotMatch`]: consume (or peek at) the current character,
//!   killing the thread on mismatch;
//! * **control flow** — [`Instruction::Split`], [`Instruction::Jump`]:
//!   enumerate alternative paths / move the program counter;
//! * **acceptance** — [`Instruction::Accept`], [`Instruction::AcceptPartial`]:
//!   finish with a positive match (at end-of-input only, or anywhere).
//!
//! This crate is the shared vocabulary of the whole workspace: both
//! compilers (`cicero-core` and the legacy single-IR `cicero-legacy`) emit
//! a [`Program`], and the cycle-level simulator (`cicero-sim`) executes it.
//!
//! It also implements the paper's *code-locality proxy metric*
//! `D_offset` (Equation 1) in [`locality`], and a binary [`encoding`]
//! (16-bit words: 3-bit opcode, 13-bit operand) with an assembler and a
//! disassembler for round-tripping programs as text or bytes.
//!
//! # Example
//!
//! ```
//! use cicero_isa::{Instruction, Program};
//!
//! // `ab|cd` with an implicit `.*` prefix, as in Listing 2 of the paper.
//! let program = Program::from_instructions(vec![
//!     Instruction::Split(3),
//!     Instruction::MatchAny,
//!     Instruction::Jump(0),
//!     Instruction::Split(7),
//!     Instruction::Match(b'a'),
//!     Instruction::Match(b'b'),
//!     Instruction::AcceptPartial,
//!     Instruction::Match(b'c'),
//!     Instruction::Match(b'd'),
//!     Instruction::AcceptPartial,
//! ])?;
//! assert_eq!(program.total_jump_offset(), 3 + 2 + 4);
//! # Ok::<(), cicero_isa::ProgramError>(())
//! ```
//!
//! [Parravicini et al., TECS 2021]: https://doi.org/10.1145/3476982

pub mod encoding;
pub mod instruction;
pub mod interp;
pub mod locality;
pub mod program;
pub mod stream;

pub use encoding::{DecodeError, EncodedProgram};
pub use instruction::{Instruction, Opcode, MAX_OPERAND};
pub use interp::{accepts, run, run_all, ExecAllOutcome, ExecOutcome};
pub use program::{ParseAsmError, Program, ProgramError};
pub use stream::{run_chunked, StreamMatcher};
