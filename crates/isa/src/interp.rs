//! Functional (architecture-free) executor for Cicero programs.
//!
//! This is the ISA's reference semantics: a breadth-first Thompson
//! simulation with per-position thread deduplication, independent of any
//! microarchitectural detail (pipelines, FIFOs, caches). The cycle-level
//! simulator in `cicero-sim` must produce exactly the same accept/reject
//! verdicts; both compilers are differentially tested against it and
//! against the AST-level oracle in `regex-oracle`.
//!
//! # End-of-input semantics
//!
//! When the input is exhausted there is no current character, so **all
//! three matching instructions kill the thread** (including the
//! non-consuming `NotMatch`); only `Accept`/`AcceptPartial` can fire. This
//! matches the RTL, where the engine raises an end-of-stream flag that
//! gates the match units.

use crate::instruction::Instruction;
use crate::program::Program;

/// Result of executing a program over an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Whether the program accepted.
    pub accepted: bool,
    /// Input position (byte index) at which acceptance fired, if any.
    /// For `Accept` this is always the input length.
    pub match_position: Option<usize>,
    /// The RE identifier reported by `AcceptPartialId`, when the program
    /// was compiled for multi-matching (Future Work ISA extension).
    pub matched_id: Option<u16>,
    /// Total instructions executed across all threads (a work metric; the
    /// cycle simulator reports real cycles instead).
    pub instructions_executed: u64,
}

/// Execute `program` over `input`, stopping at the first acceptance.
///
/// Threads all start at PC 0 on the first character. Acceptance is
/// immediate: like the hardware, the engine halts the whole execution as
/// soon as any thread accepts (§3.3 "the NFA traversal can stop as soon as
/// possible").
pub fn run(program: &Program, input: &[u8]) -> ExecOutcome {
    Executor::new(program).run(input)
}

/// Convenience wrapper returning only the verdict.
pub fn accepts(program: &Program, input: &[u8]) -> bool {
    run(program, input).accepted
}

/// Result of an exhaustive multi-matching execution ([`run_all`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecAllOutcome {
    /// Whether any acceptance fired.
    pub accepted: bool,
    /// Every distinct RE identifier reported by `AcceptPartialId`, in
    /// ascending order. Empty for single-pattern programs (whose
    /// acceptances carry no identifier).
    pub matched_ids: Vec<u16>,
    /// Input position of the earliest acceptance, if any.
    pub first_match_position: Option<usize>,
    /// Total instructions executed across all threads.
    pub instructions_executed: u64,
}

impl ExecAllOutcome {
    /// Whether the set member with identifier `id` matched.
    pub fn matched(&self, id: u16) -> bool {
        self.matched_ids.binary_search(&id).is_ok()
    }
}

/// Execute `program` over the whole input, collecting *every* distinct
/// `AcceptPartialId` instead of halting at the first acceptance.
///
/// [`run`] mirrors the hardware: the engine stops the moment any thread
/// accepts, so a multi-matching set reports at most one identifier even
/// when several members match. This mode answers the stronger question —
/// *which members of the set match anywhere in the input* — by killing
/// only the accepting thread and carrying on until the frontier drains or
/// every identifier has been seen. Un-identified acceptances
/// (`Accept`/`AcceptPartial`) set [`ExecAllOutcome::accepted`] without
/// contributing an identifier; they keep their usual semantics otherwise.
pub fn run_all(program: &Program, input: &[u8]) -> ExecAllOutcome {
    Executor::new(program).run_all(input)
}

struct Executor<'p> {
    program: &'p Program,
    /// Dedup filter: whether a PC is already in the current frontier.
    in_current: Vec<bool>,
    /// Dedup filter for the next frontier.
    in_next: Vec<bool>,
}

impl<'p> Executor<'p> {
    fn new(program: &'p Program) -> Executor<'p> {
        Executor {
            program,
            in_current: vec![false; program.len()],
            in_next: vec![false; program.len()],
        }
    }

    fn run(&mut self, input: &[u8]) -> ExecOutcome {
        let mut executed: u64 = 0;
        let mut current: Vec<u16> = Vec::with_capacity(self.program.len());
        let mut next: Vec<u16> = Vec::with_capacity(self.program.len());
        self.push(&mut current, 0, Frontier::Current);

        for position in 0..=input.len() {
            let ch = input.get(position).copied();
            // Drain the current frontier; Split/Jump/NotMatch push back
            // onto it (same position), Match/MatchAny push onto `next`.
            let mut i = 0;
            while i < current.len() {
                let pc = current[i];
                i += 1;
                executed += 1;
                let ins = self.program.get(pc).expect("validated program");
                match ins {
                    Instruction::Accept => {
                        if ch.is_none() {
                            return ExecOutcome {
                                accepted: true,
                                match_position: Some(position),
                                matched_id: None,
                                instructions_executed: executed,
                            };
                        }
                        // Not at end: thread dies.
                    }
                    Instruction::AcceptPartial => {
                        return ExecOutcome {
                            accepted: true,
                            match_position: Some(position),
                            matched_id: None,
                            instructions_executed: executed,
                        };
                    }
                    Instruction::AcceptPartialId(id) => {
                        return ExecOutcome {
                            accepted: true,
                            match_position: Some(position),
                            matched_id: Some(id),
                            instructions_executed: executed,
                        };
                    }
                    Instruction::Split(target) => {
                        self.push(&mut current, pc + 1, Frontier::Current);
                        self.push(&mut current, target, Frontier::Current);
                    }
                    Instruction::Jump(target) => {
                        self.push(&mut current, target, Frontier::Current);
                    }
                    Instruction::MatchAny => {
                        if ch.is_some() {
                            self.push(&mut next, pc + 1, Frontier::Next);
                        }
                    }
                    Instruction::Match(expected) => {
                        if ch == Some(expected) {
                            self.push(&mut next, pc + 1, Frontier::Next);
                        }
                    }
                    Instruction::NotMatch(unexpected) => {
                        // Non-consuming: stays at this position.
                        if ch.is_some() && ch != Some(unexpected) {
                            self.push(&mut current, pc + 1, Frontier::Current);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            for pc in current.drain(..) {
                self.in_current[usize::from(pc)] = false;
            }
            std::mem::swap(&mut current, &mut next);
            std::mem::swap(&mut self.in_current, &mut self.in_next);
        }

        ExecOutcome {
            accepted: false,
            match_position: None,
            matched_id: None,
            instructions_executed: executed,
        }
    }

    fn run_all(&mut self, input: &[u8]) -> ExecAllOutcome {
        // Early-exit bound: once every identifier that appears in the
        // program has fired there is nothing left to learn.
        let distinct_ids: Vec<u16> = {
            let mut ids: Vec<u16> = (0..self.program.len() as u16)
                .filter_map(|pc| match self.program.get(pc) {
                    Some(Instruction::AcceptPartialId(id)) => Some(id),
                    _ => None,
                })
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        };
        let mut out = ExecAllOutcome {
            accepted: false,
            matched_ids: Vec::new(),
            first_match_position: None,
            instructions_executed: 0,
        };
        let mut current: Vec<u16> = Vec::with_capacity(self.program.len());
        let mut next: Vec<u16> = Vec::with_capacity(self.program.len());
        self.push(&mut current, 0, Frontier::Current);

        'positions: for position in 0..=input.len() {
            let ch = input.get(position).copied();
            let mut i = 0;
            while i < current.len() {
                let pc = current[i];
                i += 1;
                out.instructions_executed += 1;
                let ins = self.program.get(pc).expect("validated program");
                match ins {
                    Instruction::Accept => {
                        if ch.is_none() {
                            out.accepted = true;
                            out.first_match_position.get_or_insert(position);
                        }
                    }
                    Instruction::AcceptPartial => {
                        out.accepted = true;
                        out.first_match_position.get_or_insert(position);
                    }
                    Instruction::AcceptPartialId(id) => {
                        out.accepted = true;
                        out.first_match_position.get_or_insert(position);
                        if let Err(at) = out.matched_ids.binary_search(&id) {
                            out.matched_ids.insert(at, id);
                            if out.matched_ids.len() == distinct_ids.len() {
                                break 'positions;
                            }
                        }
                    }
                    Instruction::Split(target) => {
                        self.push(&mut current, pc + 1, Frontier::Current);
                        self.push(&mut current, target, Frontier::Current);
                    }
                    Instruction::Jump(target) => {
                        self.push(&mut current, target, Frontier::Current);
                    }
                    Instruction::MatchAny => {
                        if ch.is_some() {
                            self.push(&mut next, pc + 1, Frontier::Next);
                        }
                    }
                    Instruction::Match(expected) => {
                        if ch == Some(expected) {
                            self.push(&mut next, pc + 1, Frontier::Next);
                        }
                    }
                    Instruction::NotMatch(unexpected) => {
                        if ch.is_some() && ch != Some(unexpected) {
                            self.push(&mut current, pc + 1, Frontier::Current);
                        }
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            for pc in current.drain(..) {
                self.in_current[usize::from(pc)] = false;
            }
            std::mem::swap(&mut current, &mut next);
            std::mem::swap(&mut self.in_current, &mut self.in_next);
        }
        out
    }

    fn push(&mut self, frontier: &mut Vec<u16>, pc: u16, which: Frontier) {
        let seen = match which {
            Frontier::Current => &mut self.in_current[usize::from(pc)],
            Frontier::Next => &mut self.in_next[usize::from(pc)],
        };
        if !*seen {
            *seen = true;
            frontier.push(pc);
        }
    }
}

#[derive(Clone, Copy)]
enum Frontier {
    Current,
    Next,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::Instruction::*;
    use crate::program::Program;

    /// `ab|cd` with implicit `.*` prefix and partial acceptance
    /// (Listing 2, jump-simplified column).
    fn ab_or_cd() -> Program {
        Program::from_instructions(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            AcceptPartial,
        ])
        .unwrap()
    }

    #[test]
    fn finds_substring_matches() {
        let p = ab_or_cd();
        assert!(accepts(&p, b"ab"));
        assert!(accepts(&p, b"xxabyy"));
        assert!(accepts(&p, b"xxcd"));
        assert!(!accepts(&p, b"ac"));
        assert!(!accepts(&p, b""));
        assert!(!accepts(&p, b"ba"));
    }

    #[test]
    fn match_position_is_earliest_end() {
        let p = ab_or_cd();
        let out = run(&p, b"xcdab");
        assert_eq!(out.match_position, Some(3)); // `cd` ends at index 3.
    }

    #[test]
    fn exact_accept_requires_end() {
        // `^ab$` — Match a, Match b, Accept.
        let p = Program::from_instructions(vec![Match(b'a'), Match(b'b'), Accept]).unwrap();
        assert!(accepts(&p, b"ab"));
        assert!(!accepts(&p, b"abx"));
        assert!(!accepts(&p, b"xab"));
    }

    #[test]
    fn not_match_chain_is_non_consuming() {
        // `[^ab]` = NotMatch a; NotMatch b; MatchAny; AcceptPartial — with
        // no implicit prefix.
        let p = Program::from_instructions(vec![
            NotMatch(b'a'),
            NotMatch(b'b'),
            MatchAny,
            AcceptPartial,
        ])
        .unwrap();
        assert!(accepts(&p, b"z"));
        assert!(!accepts(&p, b"a"));
        assert!(!accepts(&p, b"b"));
        assert!(!accepts(&p, b""));
    }

    #[test]
    fn matching_kills_at_end_of_input() {
        // NotMatch at end of input kills the thread rather than passing.
        let p = Program::from_instructions(vec![Match(b'x'), NotMatch(b'a'), Accept]).unwrap();
        assert!(!accepts(&p, b"x"), "NotMatch must not fire at end of input");
        // With "xz": NotMatch(a) passes without consuming, so Accept then
        // sees position 1 of 2 and the thread dies.
        assert!(!accepts(&p, b"xz"));
    }

    #[test]
    fn split_loops_terminate_via_dedup() {
        // `(a*)*`-style pathological loop: Split(0) at 0 jumping to itself
        // through a cycle must terminate thanks to dedup.
        let p = Program::from_instructions(vec![Split(2), Jump(0), Match(b'a'), Jump(0), Accept])
            .unwrap();
        let out = run(&p, b"aaa");
        assert!(!out.accepted);
        // Bounded work: at most program.len() distinct PCs per position.
        assert!(out.instructions_executed <= 5 * 5);
    }

    #[test]
    fn acceptance_halts_execution_early() {
        let p =
            Program::from_instructions(vec![Split(2), AcceptPartial, MatchAny, Jump(0)]).unwrap();
        let out = run(&p, &[b'x'; 1000]);
        assert!(out.accepted);
        assert_eq!(out.match_position, Some(0));
        assert!(out.instructions_executed < 10);
    }

    #[test]
    fn work_metric_counts_all_threads() {
        let p = ab_or_cd();
        let out = run(&p, b"zzzz");
        assert!(!out.accepted);
        assert!(out.instructions_executed > 4, "{out:?}");
    }

    /// `ab|cd` as an identified multi-matching set: id 0 accepts after
    /// `ab`, id 1 after `cd` (same scan-loop shape as `ab_or_cd`).
    fn ab_cd_set() -> Program {
        Program::from_instructions(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartialId(0),
            Match(b'c'),
            Match(b'd'),
            AcceptPartialId(1),
        ])
        .unwrap()
    }

    #[test]
    fn run_all_collects_every_distinct_id() {
        let p = ab_cd_set();
        let out = run_all(&p, b"xxabyycdzz");
        assert!(out.accepted);
        assert_eq!(out.matched_ids, vec![0, 1]);
        assert!(out.matched(0) && out.matched(1));
        // `run` halts at the first acceptance and sees only `ab`.
        assert_eq!(run(&p, b"xxabyycdzz").matched_id, Some(0));
    }

    #[test]
    fn run_all_agrees_with_run_on_verdict_and_position() {
        let p = ab_cd_set();
        for input in [b"xcdab".as_slice(), b"ab", b"zzzz", b""] {
            let one = run(&p, input);
            let all = run_all(&p, input);
            assert_eq!(all.accepted, one.accepted, "{input:?}");
            assert_eq!(all.first_match_position, one.match_position, "{input:?}");
        }
    }

    #[test]
    fn run_all_dedups_repeated_acceptances_of_one_id() {
        let p = ab_cd_set();
        let out = run_all(&p, b"ab ab ab cd");
        assert_eq!(out.matched_ids, vec![0, 1]);
        assert_eq!(out.first_match_position, Some(2));
    }

    #[test]
    fn run_all_stops_early_once_every_id_has_fired() {
        let p = ab_cd_set();
        let mut input = b"abcd".to_vec();
        input.extend(vec![b'x'; 10_000]);
        let out = run_all(&p, &input);
        assert_eq!(out.matched_ids, vec![0, 1]);
        // Both ids fire within the first few positions; the long tail is
        // never scanned.
        assert!(out.instructions_executed < 200, "{out:?}");
    }

    #[test]
    fn run_all_without_ids_reports_plain_acceptance() {
        let p = ab_or_cd();
        let out = run_all(&p, b"xxab");
        assert!(out.accepted);
        assert!(out.matched_ids.is_empty());
        assert_eq!(out.first_match_position, Some(4));
        assert!(!run_all(&p, b"zz").accepted);
    }
}
