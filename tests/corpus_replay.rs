//! Replays the committed differential-fuzzing regression corpus
//! (`crates/difftest/corpus/*.toml`) through the full equivalence matrix
//! as a normal `cargo test`.
//!
//! Every minimized divergence the fuzzer ever finds is committed here, so
//! a fixed bug stays fixed. Triage workflow: see TESTING.md.

use cicero::difftest;

#[test]
fn every_corpus_case_passes_the_full_matrix() {
    let dir = difftest::default_corpus_dir();
    let replayed = difftest::replay_corpus(&dir).expect("corpus loads");
    assert!(!replayed.is_empty(), "the committed corpus at {} must not be empty", dir.display());
    for (case, outcome) in &replayed {
        assert_eq!(
            *outcome,
            difftest::Outcome::Pass,
            "corpus case `{}` (pattern {:?}, {}): {outcome:?}",
            case.name,
            case.pattern,
            case.note
        );
    }
}

/// The corpus carries the proptest regression seed (satellite of the
/// differential-fuzzing issue): the stored shrink from
/// `tests/proptest_properties.proptest-regressions` must be present.
#[test]
fn the_proptest_regression_seed_is_committed() {
    let replayed = difftest::replay_corpus(&difftest::default_corpus_dir()).expect("corpus loads");
    assert!(
        replayed.iter().any(|(case, _)| case.pattern == "x(a?|a*)y"),
        "missing the proptest-regressions seed x(a?|a*)y"
    );
}

/// Corpus files are exactly reproducible through the TOML writer: loading
/// and re-rendering is the identity on the key/value content, so `--save`
/// output and hand-written files stay interchangeable.
#[test]
fn corpus_files_roundtrip_through_the_writer() {
    for (case, _) in replay_all() {
        let rendered = case.to_toml();
        let reparsed = difftest::CorpusCase::from_toml(&case.name, &rendered).unwrap();
        assert_eq!(reparsed, case);
    }
}

fn replay_all() -> Vec<(difftest::CorpusCase, difftest::Outcome)> {
    difftest::replay_corpus(&difftest::default_corpus_dir()).expect("corpus loads")
}
