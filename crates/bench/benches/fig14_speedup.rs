//! **Figure 14** — RE execution speedup of every selected configuration,
//! normalized against OLD 1x9 CORES (new compiler everywhere).
//!
//! Reproduction targets: NEW 16x1 always improves on the best old
//! configurations, with the largest wins on the alternate suites
//! (the paper's headline 2.27x is Protomata4, Table 6).

use cicero_bench::{banner, f2, measure, selected_configs, suites, CompiledSuite, Scale, Table};
use cicero_sim::ArchConfig;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 14", "speedup normalized to OLD 1x9 CORES", scale);
    let compiled: Vec<CompiledSuite> = suites(scale).iter().map(CompiledSuite::build).collect();
    let baseline_config = ArchConfig::old_organization(9);

    let mut headers = vec!["configuration".to_owned()];
    headers.extend(compiled.iter().map(|s| s.name.to_owned()));
    let mut table = Table::new(headers);
    let baselines: Vec<f64> = compiled
        .iter()
        .map(|s| measure(&s.new_opt, &s.chunks, &baseline_config).avg_time_us)
        .collect();
    for config in selected_configs() {
        let mut cells = vec![config.name()];
        for (i, suite) in compiled.iter().enumerate() {
            let m = measure(&suite.new_opt, &suite.chunks, &config);
            cells.push(format!("{}x", f2(baselines[i] / m.avg_time_us)));
        }
        table.row(cells);
    }
    table.print();
    println!("\n  expectation: NEW 16x1 >= 1.0x everywhere, largest on PROTOMATA4/BRILL4");
}
