//! Minimal hand-rolled JSON serialization (the workspace has no serde).
//!
//! Only what the JSONL sink needs: string escaping, a scalar [`Value`]
//! type, and an insertion-ordered [`JsonObject`] builder.

use std::fmt::Write as _;

/// A JSON scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON string.
    Str(String),
    /// Unsigned integer (serialized without a fraction).
    UInt(u64),
    /// Signed integer (serialized without a fraction).
    Int(i64),
    /// Floating point; NaN and infinities serialize as `null`.
    Float(f64),
    /// JSON boolean.
    Bool(bool),
}

impl Value {
    /// Append the JSON encoding of this value to `out`.
    pub fn write_to(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                out.push('"');
                escape_json_into(s, out);
                out.push('"');
            }
            Value::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Value::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Value::Float(f) => {
                if f.is_finite() {
                    // `{f}` would print integral floats without a dot;
                    // `?` keeps them round-trippable JSON numbers.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null");
                }
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::UInt(u)
    }
}

impl From<u32> for Value {
    fn from(u: u32) -> Value {
        Value::UInt(u64::from(u))
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::UInt(u as u64)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// Escape `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_json_into(s, &mut out);
    out
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Insertion-ordered JSON object builder producing a single-line object.
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> JsonObject {
        JsonObject { buf: String::from("{") }
    }

    fn key(&mut self, key: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_json_into(key, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Add a scalar field.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> JsonObject {
        self.key(key);
        value.into().write_to(&mut self.buf);
        self
    }

    /// Add a field whose value is raw, already-serialized JSON.
    pub fn field_raw(mut self, key: &str, raw_json: &str) -> JsonObject {
        self.key(key);
        self.buf.push_str(raw_json);
        self
    }

    /// Add a nested object built from key/value pairs.
    pub fn field_object(mut self, key: &str, pairs: &[(String, Value)]) -> JsonObject {
        self.key(key);
        let mut nested = JsonObject::new();
        for (k, v) in pairs {
            nested = nested.field(k, v.clone());
        }
        self.buf.push_str(&nested.finish());
        self
    }

    /// Close the object and return its JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn builds_ordered_objects() {
        let json = JsonObject::new()
            .field("name", "pass:canonicalize")
            .field("n", 3u64)
            .field("ratio", 0.5f64)
            .field("ok", true)
            .finish();
        assert_eq!(json, r#"{"name":"pass:canonicalize","n":3,"ratio":0.5,"ok":true}"#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let json = JsonObject::new().field("v", f64::NAN).finish();
        assert_eq!(json, r#"{"v":null}"#);
    }

    #[test]
    fn integral_floats_keep_a_fraction() {
        let json = JsonObject::new().field("v", 3.0f64).finish();
        assert_eq!(json, r#"{"v":3.0}"#);
    }

    #[test]
    fn nested_objects_serialize() {
        let attrs = vec![("k".to_owned(), Value::from("v"))];
        let json = JsonObject::new().field("type", "span").field_object("attrs", &attrs).finish();
        assert_eq!(json, r#"{"type":"span","attrs":{"k":"v"}}"#);
    }
}
