//! The versioned `tune.toml` persistence format.
//!
//! Hand-rolled on purpose (the workspace is offline; no TOML dependency):
//! the renderer emits a fixed key order with no timestamps, so identical
//! tuning runs produce **byte-identical** files — the determinism
//! contract `--seed` promises. The parser is strict: unknown sections or
//! keys, duplicated keys, missing keys, malformed values, and files from
//! a future version all fail loudly rather than being silently ignored —
//! a config that steers production serving must not half-load.

use std::path::Path;

use cicero_core::CompilerOptions;
use cicero_hostexec::HostTiers;
use cicero_sim::ArchConfig;
use regex_dialect::transforms::PassOrder;

use crate::config::{ArchParams, OrganizationKind, TuneConfig};
use crate::search::TuneOutcome;
use crate::workload::Workload;
use crate::TuneError;

/// The format version this build writes and the only one it accepts.
pub const TUNE_FILE_VERSION: u64 = 1;

/// A parsed (or about-to-be-written) `tune.toml`.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneFile {
    /// Workload the winner was tuned for.
    pub workload: String,
    /// The workload's identity fingerprint at tuning time.
    pub fingerprint: u64,
    /// Search seed.
    pub seed: u64,
    /// `exhaustive` or `random-mutation`.
    pub strategy: String,
    /// Cost model name (`sim`, `host`).
    pub cost_model: String,
    /// Cost-model evaluations spent.
    pub evals: u64,
    /// Baseline simulated cycles (0 when tuned by the host model).
    pub default_cycles: u64,
    /// Winner simulated cycles (0 when tuned by the host model).
    pub tuned_cycles: u64,
    /// Baseline summed `D_offset`.
    pub default_d_offset: u64,
    /// Winner summed `D_offset`.
    pub tuned_d_offset: u64,
    /// The winning configuration.
    pub config: TuneConfig,
}

impl TuneFile {
    /// Package a search result for persistence.
    pub fn from_outcome(
        workload: &Workload,
        outcome: &TuneOutcome,
        cost_model: &str,
        seed: u64,
    ) -> TuneFile {
        TuneFile {
            workload: workload.name.clone(),
            fingerprint: workload.fingerprint(),
            seed,
            strategy: outcome.strategy.to_owned(),
            cost_model: cost_model.to_owned(),
            evals: outcome.evals as u64,
            default_cycles: outcome.default_report.cycles,
            tuned_cycles: outcome.best_report.cycles,
            default_d_offset: outcome.default_report.d_offset,
            tuned_d_offset: outcome.best_report.d_offset,
            config: outcome.best,
        }
    }

    /// The winner's compiler options.
    pub fn compiler_options(&self) -> CompilerOptions {
        self.config.compiler
    }

    /// The winner's simulated machine.
    pub fn arch_config(&self) -> ArchConfig {
        self.config.arch.to_arch_config()
    }

    /// The winner's host-backend tier thresholds.
    pub fn host_tiers(&self) -> HostTiers {
        self.config.host
    }

    /// Render to the canonical byte-deterministic text form.
    pub fn render(&self) -> String {
        let c = &self.config.compiler;
        let a = &self.config.arch;
        format!(
            "# cicero tune result (format v{version}) — regenerate with `cicero tune`\n\
             version = {version}\n\
             \n\
             [meta]\n\
             workload = \"{workload}\"\n\
             fingerprint = \"{fingerprint:016x}\"\n\
             seed = {seed}\n\
             strategy = \"{strategy}\"\n\
             cost_model = \"{cost_model}\"\n\
             evals = {evals}\n\
             \n\
             [score]\n\
             default_cycles = {default_cycles}\n\
             tuned_cycles = {tuned_cycles}\n\
             default_d_offset = {default_d_offset}\n\
             tuned_d_offset = {tuned_d_offset}\n\
             \n\
             [compiler]\n\
             canonicalize = {canonicalize}\n\
             factorize = {factorize}\n\
             shortest_match = {shortest_match}\n\
             shortest_match_leading = {shortest_match_leading}\n\
             jump_simplification = {jump_simplification}\n\
             pass_order = \"{pass_order}\"\n\
             \n\
             [arch]\n\
             organization = \"{organization}\"\n\
             cores_per_engine = {cores_per_engine}\n\
             engines = {engines}\n\
             cc_id_bits = {cc_id_bits}\n\
             cache_lines = {cache_lines}\n\
             cache_line_size = {cache_line_size}\n\
             cache_miss_penalty = {cache_miss_penalty}\n\
             \n\
             [host]\n\
             bit64_max = {bit64_max}\n\
             bit128_max = {bit128_max}\n\
             \n\
             [runtime]\n\
             jobs = {jobs}\n\
             cache_shards = {cache_shards}\n",
            version = TUNE_FILE_VERSION,
            workload = self.workload,
            fingerprint = self.fingerprint,
            seed = self.seed,
            strategy = self.strategy,
            cost_model = self.cost_model,
            evals = self.evals,
            default_cycles = self.default_cycles,
            tuned_cycles = self.tuned_cycles,
            default_d_offset = self.default_d_offset,
            tuned_d_offset = self.tuned_d_offset,
            canonicalize = c.canonicalize,
            factorize = c.factorize,
            shortest_match = c.shortest_match,
            shortest_match_leading = c.shortest_match_leading,
            jump_simplification = c.jump_simplification,
            pass_order = c.pass_order.to_token_string(),
            organization = a.organization.token(),
            cores_per_engine = a.cores_per_engine,
            engines = a.engines,
            cc_id_bits = a.cc_id_bits,
            cache_lines = a.cache_lines,
            cache_line_size = a.cache_line_size,
            cache_miss_penalty = a.cache_miss_penalty,
            bit64_max = self.config.host.bit64_max,
            bit128_max = self.config.host.bit128_max,
            jobs = self.config.jobs,
            cache_shards = self.config.cache_shards,
        )
    }

    /// Parse the canonical form. Strict — see the module docs.
    ///
    /// # Errors
    ///
    /// [`TuneError::Parse`] naming the offending line for every rejected
    /// input.
    pub fn parse(text: &str) -> Result<TuneFile, TuneError> {
        let mut section = String::new();
        let mut seen: Vec<String> = Vec::new();
        let mut values: Vec<(String, String)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fail = |msg: String| TuneError::Parse(format!("line {}: {msg}", lineno + 1));
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| fail(format!("malformed section header `{line}`")))?;
                if !SECTIONS.contains(&name) {
                    return Err(fail(format!("unknown section `[{name}]`")));
                }
                if seen.contains(&name.to_owned()) {
                    return Err(fail(format!("duplicate section `[{name}]`")));
                }
                seen.push(name.to_owned());
                section = name.to_owned();
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| fail(format!("expected `key = value`, got `{line}`")))?;
            let key = key.trim();
            let value = value.trim();
            let qualified =
                if section.is_empty() { key.to_owned() } else { format!("{section}.{key}") };
            if !KEYS.contains(&qualified.as_str()) {
                return Err(fail(format!("unknown key `{qualified}`")));
            }
            if values.iter().any(|(k, _)| *k == qualified) {
                return Err(fail(format!("duplicate key `{qualified}`")));
            }
            values.push((qualified, value.to_owned()));
        }

        let get = |key: &str| -> Result<&str, TuneError> {
            values
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str())
                .ok_or_else(|| TuneError::Parse(format!("missing key `{key}`")))
        };
        let get_u64 = |key: &str| -> Result<u64, TuneError> {
            get(key)?
                .parse::<u64>()
                .map_err(|_| TuneError::Parse(format!("key `{key}` is not an integer")))
        };
        let get_bool = |key: &str| -> Result<bool, TuneError> {
            match get(key)? {
                "true" => Ok(true),
                "false" => Ok(false),
                other => {
                    Err(TuneError::Parse(format!("key `{key}` is not a boolean (got `{other}`)")))
                }
            }
        };
        let get_str = |key: &str| -> Result<String, TuneError> {
            let raw = get(key)?;
            raw.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .map(str::to_owned)
                .ok_or_else(|| TuneError::Parse(format!("key `{key}` is not a quoted string")))
        };

        let version = get_u64("version")?;
        if version != TUNE_FILE_VERSION {
            return Err(TuneError::Parse(format!(
                "unsupported tune.toml version {version} (this build reads v{TUNE_FILE_VERSION}); \
                 re-run `cicero tune` to regenerate"
            )));
        }

        let fingerprint_hex = get_str("meta.fingerprint")?;
        let fingerprint = u64::from_str_radix(&fingerprint_hex, 16).map_err(|_| {
            TuneError::Parse(format!("meta.fingerprint `{fingerprint_hex}` is not 16-digit hex"))
        })?;
        let pass_order_text = get_str("compiler.pass_order")?;
        let pass_order = PassOrder::parse(&pass_order_text).map_err(TuneError::Parse)?;
        let organization_text = get_str("arch.organization")?;
        let organization = OrganizationKind::from_token(&organization_text).ok_or_else(|| {
            TuneError::Parse(format!(
                "arch.organization `{organization_text}` is neither `old` nor `new`"
            ))
        })?;

        let mut compiler = CompilerOptions::optimized();
        compiler.canonicalize = get_bool("compiler.canonicalize")?;
        compiler.factorize = get_bool("compiler.factorize")?;
        compiler.shortest_match = get_bool("compiler.shortest_match")?;
        compiler.shortest_match_leading = get_bool("compiler.shortest_match_leading")?;
        compiler.jump_simplification = get_bool("compiler.jump_simplification")?;
        compiler.pass_order = pass_order;

        let arch = ArchParams {
            organization,
            cores_per_engine: get_u64("arch.cores_per_engine")? as usize,
            engines: get_u64("arch.engines")? as usize,
            cc_id_bits: get_u64("arch.cc_id_bits")? as u32,
            cache_lines: get_u64("arch.cache_lines")? as usize,
            cache_line_size: get_u64("arch.cache_line_size")? as usize,
            cache_miss_penalty: get_u64("arch.cache_miss_penalty")?,
        };
        validate_arch(&arch)?;

        Ok(TuneFile {
            workload: get_str("meta.workload")?,
            fingerprint,
            seed: get_u64("meta.seed")?,
            strategy: get_str("meta.strategy")?,
            cost_model: get_str("meta.cost_model")?,
            evals: get_u64("meta.evals")?,
            default_cycles: get_u64("score.default_cycles")?,
            tuned_cycles: get_u64("score.tuned_cycles")?,
            default_d_offset: get_u64("score.default_d_offset")?,
            tuned_d_offset: get_u64("score.tuned_d_offset")?,
            config: TuneConfig {
                compiler,
                arch,
                host: HostTiers {
                    bit64_max: get_u64("host.bit64_max")? as usize,
                    bit128_max: get_u64("host.bit128_max")? as usize,
                },
                jobs: get_u64("runtime.jobs")? as usize,
                cache_shards: get_u64("runtime.cache_shards")? as usize,
            },
        })
    }

    /// Read and parse a file.
    ///
    /// # Errors
    ///
    /// [`TuneError::Io`] on read failure, [`TuneError::Parse`] on bad
    /// content — both naming the path.
    pub fn load(path: impl AsRef<Path>) -> Result<TuneFile, TuneError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| TuneError::Io(format!("reading {}: {e}", path.display())))?;
        TuneFile::parse(&text).map_err(|e| {
            // Re-wrap with the path, unwrapping the inner message so the
            // "tune.toml error:" prefix appears once, not twice.
            let message = match e {
                TuneError::Parse(m) => m,
                other => other.to_string(),
            };
            TuneError::Parse(format!("{}: {message}", path.display()))
        })
    }

    /// Render and write.
    ///
    /// # Errors
    ///
    /// [`TuneError::Io`] on write failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TuneError> {
        let path = path.as_ref();
        std::fs::write(path, self.render())
            .map_err(|e| TuneError::Io(format!("writing {}: {e}", path.display())))
    }
}

const SECTIONS: [&str; 6] = ["meta", "score", "compiler", "arch", "host", "runtime"];

const KEYS: [&str; 28] = [
    "version",
    "meta.workload",
    "meta.fingerprint",
    "meta.seed",
    "meta.strategy",
    "meta.cost_model",
    "meta.evals",
    "score.default_cycles",
    "score.tuned_cycles",
    "score.default_d_offset",
    "score.tuned_d_offset",
    "compiler.canonicalize",
    "compiler.factorize",
    "compiler.shortest_match",
    "compiler.shortest_match_leading",
    "compiler.jump_simplification",
    "compiler.pass_order",
    "arch.organization",
    "arch.cores_per_engine",
    "arch.engines",
    "arch.cc_id_bits",
    "arch.cache_lines",
    "arch.cache_line_size",
    "arch.cache_miss_penalty",
    "host.bit64_max",
    "host.bit128_max",
    "runtime.jobs",
    "runtime.cache_shards",
];

/// Reject machine shapes the simulator's constructors would panic on —
/// a parse error names the problem; a panic deep in serving would not.
fn validate_arch(arch: &ArchParams) -> Result<(), TuneError> {
    match arch.organization {
        OrganizationKind::Old if arch.cores_per_engine != 1 => {
            Err(TuneError::Parse("arch: old organization requires cores_per_engine = 1".to_owned()))
        }
        OrganizationKind::New
            if !arch.cores_per_engine.is_power_of_two() || arch.cores_per_engine < 2 =>
        {
            Err(TuneError::Parse(
                "arch: new organization requires cores_per_engine to be a power of two >= 2"
                    .to_owned(),
            ))
        }
        _ if arch.engines == 0 => {
            Err(TuneError::Parse("arch: engines must be at least 1".to_owned()))
        }
        _ if arch.cache_lines == 0 || !arch.cache_line_size.is_power_of_two() => {
            Err(TuneError::Parse(
                "arch: cache_lines must be >= 1 and cache_line_size a power of two".to_owned(),
            ))
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneFile {
        TuneFile {
            workload: "protomata".to_owned(),
            fingerprint: 0x0123_4567_89ab_cdef,
            seed: 42,
            strategy: "exhaustive".to_owned(),
            cost_model: "sim".to_owned(),
            evals: 12,
            default_cycles: 1000,
            tuned_cycles: 900,
            default_d_offset: 80,
            tuned_d_offset: 64,
            config: TuneConfig::default(),
        }
    }

    #[test]
    fn render_parse_round_trip_is_identity() {
        let file = sample();
        let text = file.render();
        let reparsed = TuneFile::parse(&text).unwrap();
        assert_eq!(reparsed, file);
        // And the round trip is byte-stable: render(parse(render(x))) ==
        // render(x) — the determinism contract.
        assert_eq!(reparsed.render(), text);
    }

    #[test]
    fn future_versions_fail_loudly() {
        let text = sample().render().replace("version = 1", "version = 2");
        let err = TuneFile::parse(&text).unwrap_err();
        assert!(matches!(err, TuneError::Parse(ref m) if m.contains("unsupported")), "{err}");
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        let text = format!("{}\nmystery = 3\n", sample().render());
        assert!(TuneFile::parse(&text).is_err());
        let text = format!("{}\n[extras]\nx = 1\n", sample().render());
        let err = TuneFile::parse(&text).unwrap_err();
        assert!(matches!(err, TuneError::Parse(ref m) if m.contains("unknown section")), "{err}");
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let text = sample().render().replace("seed = 42", "seed = 42\nseed = 43");
        let err = TuneFile::parse(&text).unwrap_err();
        assert!(matches!(err, TuneError::Parse(ref m) if m.contains("duplicate")), "{err}");
    }

    #[test]
    fn corruption_is_rejected() {
        assert!(TuneFile::parse("not a tune file").is_err());
        assert!(TuneFile::parse("").is_err(), "missing keys must fail");
        let truncated: String = sample().render().lines().take(8).collect::<Vec<_>>().join("\n");
        assert!(TuneFile::parse(&truncated).is_err());
        let text = sample().render().replace("evals = 12", "evals = twelve");
        assert!(TuneFile::parse(&text).is_err());
    }

    #[test]
    fn invalid_machine_shapes_are_rejected() {
        let text = sample().render().replace("cores_per_engine = 16", "cores_per_engine = 9");
        let err = TuneFile::parse(&text).unwrap_err();
        assert!(matches!(err, TuneError::Parse(ref m) if m.contains("power of two")), "{err}");
        let text = sample().render().replace("engines = 1", "engines = 0");
        assert!(TuneFile::parse(&text).is_err());
    }

    #[test]
    fn bad_pass_order_is_rejected() {
        let text = sample().render().replace(
            "pass_order = \"canonicalize,factorize,shortest-match\"",
            "pass_order = \"canonicalize,canonicalize,shortest-match\"",
        );
        assert!(TuneFile::parse(&text).is_err());
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let file = sample();
        let dir = std::env::temp_dir().join(format!("cicero-tune-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tune.toml");
        file.save(&path).unwrap();
        assert_eq!(TuneFile::load(&path).unwrap(), file);
        std::fs::remove_dir_all(&dir).ok();
        assert!(matches!(TuneFile::load("/nonexistent/tune.toml"), Err(TuneError::Io(_))));
    }

    /// The committed golden file pins the serialized format: if `render`
    /// ever changes shape (key order, spelling, whitespace), this fails
    /// and the change has to be a deliberate format-version bump.
    #[test]
    fn golden_file_pins_the_serialized_format() {
        let text = include_str!("../testdata/golden.toml");
        let file = TuneFile::parse(text).expect("the committed golden file must parse");
        assert_eq!(file.render(), text, "parse → render must reproduce the golden bytes");
        assert_eq!(file.workload, "protomata");
        assert_eq!(file.seed, 42);
        assert_eq!(file.config.arch.engines, 8);
        assert_eq!(
            file.config.compiler.pass_order.to_token_string(),
            "shortest-match,canonicalize,factorize"
        );
    }
}
