//! Per-request resource budgets and the guarded batch pool.
//!
//! The plain batch path ([`Runtime::match_batch`]) assumes execution
//! cannot fail: no bound on simulated work beyond the architecture's own
//! `max_cycles` safety valve, no wall-clock bound, and a panicking worker
//! tears the whole batch down. That is fine for benchmarks; a serving
//! runtime needs the opposite defaults. The *guarded* path adds:
//!
//! * **fuel** — a per-input cap on simulated cycles; exhausting it yields
//!   [`MatchOutcome::Budget`] with the partial report instead of letting a
//!   pathological pattern spin to the 200M-cycle architectural limit;
//! * **deadline** — a wall-clock budget for the whole batch; inputs not
//!   started before expiry complete immediately as budget errors;
//! * **panic isolation** — each input runs under `catch_unwind`; a panic
//!   discards the (possibly corrupt) worker [`Machine`], respawns a fresh
//!   one, and retries the input once. The recovery is counted in
//!   [`GuardedBatch::worker_restarts`] and the `runtime.worker_restarts`
//!   telemetry counter; a second panic on the same input reports
//!   [`MatchOutcome::Fault`] and the batch still completes.
//!
//! [`Runtime::match_batch`]: crate::Runtime::match_batch

use std::time::{Duration, Instant};

use cicero_core::{Backend, CompileError};
use cicero_isa::Program;
use cicero_sim::{ArchConfig, ExecReport, Machine, WorkerStats};
use cicero_telemetry::{TraceContext, TraceSpan};

use crate::{host_exec_report, Runtime};

/// Resource limits for one request (batch or stream). The default is
/// unlimited on both axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Budget {
    /// Maximum simulated cycles per input; exceeding it yields
    /// [`MatchOutcome::Budget`] with [`BudgetKind::Fuel`].
    pub fuel: Option<u64>,
    /// Wall-clock budget for the whole request.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No limits (the plain batch path's semantics).
    pub const UNLIMITED: Budget = Budget { fuel: None, deadline: None };

    /// Limit each input to `fuel` simulated cycles.
    pub fn with_fuel(fuel: u64) -> Budget {
        Budget { fuel: Some(fuel), ..Budget::default() }
    }

    /// Limit the whole request to `deadline` of wall-clock time.
    pub fn with_deadline(deadline: Duration) -> Budget {
        Budget { deadline: Some(deadline), ..Budget::default() }
    }

    /// The architecture config actually simulated: `max_cycles` clamped
    /// down to the fuel budget (never raised).
    pub(crate) fn clamp_config(&self, config: &ArchConfig) -> ArchConfig {
        let mut clamped = config.clone();
        if let Some(fuel) = self.fuel {
            clamped.max_cycles = clamped.max_cycles.min(fuel);
        }
        clamped
    }

    /// Classify a report produced under [`Budget::clamp_config`]: hitting
    /// the clamped cycle limit is a fuel exhaustion only when the fuel cap
    /// is tighter than the architecture's own `max_cycles` safety valve.
    pub(crate) fn classify(&self, report: ExecReport, original: &ArchConfig) -> MatchOutcome {
        if report.hit_cycle_limit && self.fuel.is_some_and(|fuel| fuel < original.max_cycles) {
            MatchOutcome::Budget { kind: BudgetKind::Fuel, partial: Some(report) }
        } else {
            MatchOutcome::Complete(report)
        }
    }
}

/// Which budget axis was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// The per-input simulated-cycle cap.
    Fuel,
    /// The wall-clock deadline.
    Deadline,
}

/// The result of one guarded input.
#[derive(Debug, Clone, PartialEq)]
pub enum MatchOutcome {
    /// The run concluded normally.
    Complete(ExecReport),
    /// A budget was exhausted. `partial` carries the progress made before
    /// the cut-off (`None` when the input never started).
    Budget {
        /// The exhausted axis.
        kind: BudgetKind,
        /// Progress up to the cut-off, if the input started.
        partial: Option<ExecReport>,
    },
    /// The input panicked the worker twice; the message is the panic
    /// payload. The rest of the batch is unaffected.
    Fault(String),
}

impl MatchOutcome {
    /// The report, complete or partial (absent for `Fault` and
    /// never-started deadline misses).
    pub fn report(&self) -> Option<&ExecReport> {
        match self {
            MatchOutcome::Complete(report) => Some(report),
            MatchOutcome::Budget { partial, .. } => partial.as_ref(),
            MatchOutcome::Fault(_) => None,
        }
    }

    /// Whether the run concluded normally.
    pub fn is_complete(&self) -> bool {
        matches!(self, MatchOutcome::Complete(_))
    }
}

/// The result of one guarded batch: one outcome per input, plus recovery
/// and budget accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedBatch {
    /// One outcome per input, in input order.
    pub outcomes: Vec<MatchOutcome>,
    /// Per-worker accounting, in worker order (completed and partial runs
    /// both count).
    pub workers: Vec<WorkerStats>,
    /// Worker threads the batch actually used.
    pub jobs: usize,
    /// Workers respawned after a panic (also exported as the
    /// `runtime.worker_restarts` counter).
    pub worker_restarts: u64,
    /// Whether the program came out of the cache.
    pub cache_hit: bool,
    /// Host wall-clock time spent executing the batch.
    pub wall: Duration,
}

impl GuardedBatch {
    /// Inputs that concluded normally.
    pub fn completed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_complete()).count()
    }

    /// Inputs that concluded normally *and* matched.
    pub fn matches(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, MatchOutcome::Complete(r) if r.accepted))
            .count()
    }

    /// Inputs that exhausted a budget.
    pub fn budget_exceeded(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o, MatchOutcome::Budget { .. })).count()
    }

    /// Inputs that faulted (panicked twice).
    pub fn faults(&self) -> usize {
        self.outcomes.iter().filter(|o| matches!(o, MatchOutcome::Fault(_))).count()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_owned()
    }
}

impl Runtime {
    /// Compile `pattern` (through the cache) and run it over every input
    /// with per-request budgets and worker panic isolation.
    ///
    /// # Errors
    ///
    /// Compilation errors only; execution failures are reported per input
    /// in [`GuardedBatch::outcomes`].
    pub fn match_batch_guarded(
        &self,
        pattern: &str,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
        budget: &Budget,
    ) -> Result<GuardedBatch, CompileError> {
        self.match_batch_guarded_traced(pattern, inputs, config, budget, None)
    }

    /// [`Runtime::match_batch_guarded`] with request tracing: a `compile`
    /// child span (per-pass children on a miss) and an `execute` child
    /// span with one `sim.worker-N` span per pool worker, annotated with
    /// cycle and i-cache totals.
    ///
    /// # Errors
    ///
    /// Compilation errors only; execution failures are reported per input
    /// in [`GuardedBatch::outcomes`].
    pub fn match_batch_guarded_traced(
        &self,
        pattern: &str,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
        budget: &Budget,
        trace: Option<&TraceSpan>,
    ) -> Result<GuardedBatch, CompileError> {
        self.match_batch_guarded_traced_on(self.backend(), pattern, inputs, config, budget, trace)
    }

    /// [`Runtime::match_batch_guarded_traced`] on an explicit backend
    /// (the per-request override the server's `X-Cicero-Backend` header
    /// resolves to). The compiled program is identical either way; only
    /// the execution engine differs.
    ///
    /// # Errors
    ///
    /// Compilation errors only; execution failures are reported per input
    /// in [`GuardedBatch::outcomes`].
    pub fn match_batch_guarded_traced_on(
        &self,
        backend: Backend,
        pattern: &str,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
        budget: &Budget,
        trace: Option<&TraceSpan>,
    ) -> Result<GuardedBatch, CompileError> {
        let (program, cache_hit) = self.compile_traced(pattern, trace)?;
        Ok(self
            .run_batch_guarded_inner(backend, &program, inputs, config, budget, cache_hit, trace))
    }

    /// Run an already-compiled program over every input with budgets and
    /// panic isolation (`cache_hit` is reported as `false`).
    pub fn run_batch_guarded(
        &self,
        program: &Program,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
        budget: &Budget,
    ) -> GuardedBatch {
        self.run_batch_guarded_inner(self.backend(), program, inputs, config, budget, false, None)
    }

    /// [`Runtime::run_batch_guarded`] with request tracing (see
    /// [`Runtime::match_batch_guarded_traced`]).
    pub fn run_batch_guarded_traced(
        &self,
        program: &Program,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
        budget: &Budget,
        trace: Option<&TraceSpan>,
    ) -> GuardedBatch {
        self.run_batch_guarded_inner(self.backend(), program, inputs, config, budget, false, trace)
    }

    /// [`Runtime::run_batch_guarded_traced`] on an explicit backend.
    pub fn run_batch_guarded_traced_on(
        &self,
        backend: Backend,
        program: &Program,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
        budget: &Budget,
        trace: Option<&TraceSpan>,
    ) -> GuardedBatch {
        self.run_batch_guarded_inner(backend, program, inputs, config, budget, false, trace)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_batch_guarded_inner(
        &self,
        backend: Backend,
        program: &Program,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
        budget: &Budget,
        cache_hit: bool,
        trace: Option<&TraceSpan>,
    ) -> GuardedBatch {
        let span = self.telemetry.as_ref().map(|t| {
            let span = t.span("runtime.guarded_batch");
            span.annotate("inputs", inputs.len());
            span.annotate("fuel", budget.fuel.map_or(-1i64, |f| f as i64));
            span.annotate("backend", backend.to_string());
            span
        });
        // On the host backend every worker shares one immutable lowered
        // engine; the fuel budget becomes a byte budget through the same
        // `max_cycles` clamp the simulator uses.
        let host_program = (backend == Backend::Host).then(|| self.host.get_or_lower(program));
        let start = Instant::now();
        let deadline_at = budget.deadline.map(|d| start + d);
        let run_config = budget.clamp_config(config);
        let jobs = self.jobs.clamp(1, inputs.len().max(1));
        let exec_span = trace.map(|parent| {
            let span = parent.child("execute");
            span.annotate("inputs", inputs.len());
            span.annotate("jobs", jobs);
            span
        });
        // (context, execute-span id) pairs worker threads parent under.
        let worker_trace: Option<(TraceContext, u32)> =
            exec_span.as_ref().map(|span| (span.context().clone(), span.id()));
        let next = std::sync::atomic::AtomicUsize::new(0);
        let restarts = std::sync::atomic::AtomicU64::new(0);
        let hook = self.run_hook.clone();

        let per_worker: Vec<(Vec<(usize, MatchOutcome)>, WorkerStats)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..jobs)
                    .map(|worker| {
                        let next = &next;
                        let restarts = &restarts;
                        let run_config = run_config.clone();
                        let hook = hook.clone();
                        let worker_trace = worker_trace.clone();
                        let host_program = host_program.clone();
                        scope.spawn(move || {
                            let engine = if host_program.is_some() { "host" } else { "sim" };
                            let worker_span = worker_trace.as_ref().map(|(ctx, parent)| {
                                ctx.child_of(Some(*parent), format!("{engine}.worker-{worker}"))
                            });
                            // Sim path only. `None` after a panic poisons
                            // the machine; the next input respawns a
                            // fresh one.
                            let mut machine = host_program
                                .is_none()
                                .then(|| Machine::new(program, run_config.clone()));
                            let mut out = Vec::new();
                            let mut stats = WorkerStats { worker, ..WorkerStats::default() };
                            loop {
                                let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                let Some(input) = inputs.get(index) else { break };
                                if deadline_at.is_some_and(|at| Instant::now() >= at) {
                                    out.push((
                                        index,
                                        MatchOutcome::Budget {
                                            kind: BudgetKind::Deadline,
                                            partial: None,
                                        },
                                    ));
                                    continue;
                                }
                                let mut attempts = 0u32;
                                let outcome = loop {
                                    let result = if let Some(host) = &host_program {
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                            || {
                                                if let Some(hook) = &hook {
                                                    hook(index);
                                                }
                                                host_exec_report(&host.run_budgeted(
                                                    input,
                                                    Some(run_config.max_cycles),
                                                ))
                                            },
                                        ))
                                    } else {
                                        let m = machine.get_or_insert_with(|| {
                                            Machine::new(program, run_config.clone())
                                        });
                                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                            || {
                                                if let Some(hook) = &hook {
                                                    hook(index);
                                                }
                                                m.prefetch_icache();
                                                m.run(input)
                                            },
                                        ))
                                    };
                                    match result {
                                        Ok(report) => break budget.classify(report, config),
                                        Err(payload) => {
                                            machine = None;
                                            restarts
                                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                            attempts += 1;
                                            if attempts >= 2 {
                                                break MatchOutcome::Fault(panic_message(
                                                    payload.as_ref(),
                                                ));
                                            }
                                        }
                                    }
                                };
                                if let Some(report) = outcome.report() {
                                    stats.absorb(report);
                                }
                                out.push((index, outcome));
                            }
                            if let Some(span) = worker_span {
                                span.annotate("inputs", stats.inputs);
                                span.annotate("cycles", stats.cycles);
                                span.annotate("instructions", stats.instructions);
                                span.annotate("icache_hits", stats.icache_hits);
                                span.annotate("icache_misses", stats.icache_misses);
                            }
                            (out, stats)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("guarded worker panicked")).collect()
            });

        let mut outcomes =
            vec![MatchOutcome::Budget { kind: BudgetKind::Deadline, partial: None }; inputs.len()];
        let mut workers = Vec::with_capacity(jobs);
        for (chunk, stats) in per_worker {
            for (index, outcome) in chunk {
                outcomes[index] = outcome;
            }
            workers.push(stats);
        }
        let batch = GuardedBatch {
            outcomes,
            workers,
            jobs,
            worker_restarts: restarts.into_inner(),
            cache_hit,
            wall: start.elapsed(),
        };
        if let Some(telemetry) = &self.telemetry {
            telemetry.counter_add("runtime.guarded_batches", 1);
            telemetry.counter_add("runtime.inputs", batch.outcomes.len() as u64);
            telemetry.counter_add("runtime.matches", batch.matches() as u64);
            telemetry.counter_add("runtime.worker_restarts", batch.worker_restarts);
            telemetry.counter_add("runtime.budget_exceeded", batch.budget_exceeded() as u64);
            telemetry.counter_add("runtime.faults", batch.faults() as u64);
            for outcome in &batch.outcomes {
                if let Some(report) = outcome.report() {
                    report.record_into(telemetry);
                }
            }
            if let Some(span) = span {
                span.annotate("completed", batch.completed());
                span.annotate("worker_restarts", batch.worker_restarts);
            }
        }
        if let Some(span) = exec_span {
            span.annotate("completed", batch.completed());
            span.annotate("matches", batch.matches());
            span.annotate("budget_exceeded", batch.budget_exceeded());
            span.annotate("worker_restarts", batch.worker_restarts);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    use cicero_telemetry::Telemetry;

    use super::*;
    use crate::RuntimeOptions;

    const PATTERN: &str = "(abcd|bcda|cdab|dabc)";

    fn chunks() -> Vec<Vec<u8>> {
        let mut inputs: Vec<Vec<u8>> = (0..7).map(|i| vec![b'x'; 30 + i]).collect();
        inputs[2] = b"xxxabcdxxx".to_vec();
        inputs[5] = b"bcda".to_vec();
        inputs
    }

    fn runtime(jobs: usize) -> Runtime {
        Runtime::new(RuntimeOptions { jobs, ..RuntimeOptions::default() })
    }

    /// Suppress the default panic-to-stderr hook for a deliberately
    /// panicking section, so test output stays readable.
    fn quietly<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = f();
        std::panic::set_hook(prev);
        result
    }

    #[test]
    fn unlimited_guarded_batch_equals_the_plain_path() {
        let config = ArchConfig::new_organization(8, 1);
        let plain = runtime(3).match_batch(PATTERN, &chunks(), &config).unwrap();
        let guarded = runtime(3)
            .match_batch_guarded(PATTERN, &chunks(), &config, &Budget::UNLIMITED)
            .unwrap();
        assert_eq!(guarded.outcomes.len(), plain.reports.len());
        for (outcome, report) in guarded.outcomes.iter().zip(&plain.reports) {
            assert_eq!(outcome, &MatchOutcome::Complete(*report));
        }
        assert_eq!(guarded.worker_restarts, 0);
        assert_eq!(guarded.matches(), plain.matches());
    }

    #[test]
    fn fuel_exhaustion_is_a_clean_budget_outcome() {
        // A scanning pattern over a long input needs well over 8 cycles;
        // the fuel budget cuts it off with the partial report attached.
        let config = ArchConfig::old_organization(1);
        let inputs = vec![vec![b'x'; 500]];
        let batch = runtime(1)
            .match_batch_guarded(PATTERN, &inputs, &config, &Budget::with_fuel(8))
            .unwrap();
        match &batch.outcomes[0] {
            MatchOutcome::Budget { kind: BudgetKind::Fuel, partial: Some(report) } => {
                assert_eq!(report.cycles, 8);
                assert!(report.hit_cycle_limit);
                assert!(!report.accepted);
            }
            other => panic!("expected a fuel cut-off, got {other:?}"),
        }
        assert_eq!(batch.budget_exceeded(), 1);
    }

    #[test]
    fn ample_fuel_does_not_change_results() {
        let config = ArchConfig::old_organization(1);
        let plain = runtime(2).match_batch(PATTERN, &chunks(), &config).unwrap();
        let guarded = runtime(2)
            .match_batch_guarded(PATTERN, &chunks(), &config, &Budget::with_fuel(1_000_000))
            .unwrap();
        for (outcome, report) in guarded.outcomes.iter().zip(&plain.reports) {
            assert_eq!(outcome, &MatchOutcome::Complete(*report));
        }
    }

    #[test]
    fn an_expired_deadline_fails_inputs_instead_of_hanging() {
        let config = ArchConfig::old_organization(1);
        let batch = runtime(2)
            .match_batch_guarded(
                PATTERN,
                &chunks(),
                &config,
                &Budget::with_deadline(Duration::ZERO),
            )
            .unwrap();
        assert_eq!(batch.outcomes.len(), chunks().len());
        assert!(
            batch
                .outcomes
                .iter()
                .all(|o| matches!(o, MatchOutcome::Budget { kind: BudgetKind::Deadline, .. })),
            "{:?}",
            batch.outcomes
        );
    }

    #[test]
    fn a_worker_panic_is_recovered_and_the_batch_completes() {
        // The hook panics exactly once, on input 3's first attempt: the
        // worker discards its machine, respawns, retries, and every input
        // still completes with a report identical to the plain path.
        let config = ArchConfig::new_organization(8, 1);
        let plain = runtime(2).match_batch(PATTERN, &chunks(), &config).unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let hook = {
            let fired = Arc::clone(&fired);
            Arc::new(move |index: usize| {
                if index == 3 && fired.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected fault on input 3");
                }
            })
        };
        let telemetry = Telemetry::new();
        let runtime = runtime(2).with_telemetry(telemetry.clone()).with_run_hook(hook);
        let batch = quietly(|| {
            runtime.match_batch_guarded(PATTERN, &chunks(), &config, &Budget::UNLIMITED).unwrap()
        });
        assert!(batch.worker_restarts >= 1);
        assert_eq!(batch.completed(), chunks().len(), "{:?}", batch.outcomes);
        for (outcome, report) in batch.outcomes.iter().zip(&plain.reports) {
            assert_eq!(outcome, &MatchOutcome::Complete(*report));
        }
        assert!(telemetry.counter("runtime.worker_restarts") >= 1);
    }

    #[test]
    fn a_persistent_panic_faults_only_its_input() {
        // Input 3 panics on every attempt: it faults, everything else
        // completes.
        let config = ArchConfig::old_organization(1);
        let hook = Arc::new(|index: usize| {
            if index == 3 {
                panic!("persistent fault on input 3");
            }
        });
        let runtime = runtime(2).with_run_hook(hook);
        let batch = quietly(|| {
            runtime.match_batch_guarded(PATTERN, &chunks(), &config, &Budget::UNLIMITED).unwrap()
        });
        assert_eq!(batch.faults(), 1);
        assert!(matches!(&batch.outcomes[3], MatchOutcome::Fault(m) if m.contains("input 3")));
        assert_eq!(batch.completed(), chunks().len() - 1);
        assert_eq!(batch.worker_restarts, 2);
    }

    #[test]
    fn worker_stats_cover_completed_work() {
        let config = ArchConfig::old_organization(1);
        let batch = runtime(3)
            .match_batch_guarded(PATTERN, &chunks(), &config, &Budget::UNLIMITED)
            .unwrap();
        assert_eq!(batch.workers.iter().map(|w| w.inputs).sum::<usize>(), chunks().len());
        let outcome_cycles: u64 =
            batch.outcomes.iter().filter_map(|o| o.report().map(|r| r.cycles)).sum();
        assert_eq!(batch.workers.iter().map(|w| w.cycles).sum::<u64>(), outcome_cycles);
    }

    #[test]
    fn a_set_scan_survives_a_worker_panic_with_correct_per_pattern_counts() {
        // A multi-pattern set on the guarded pool: one injected panic on
        // chunk 2's first attempt exercises the respawn path, and the
        // exhaustive per-pattern counts (run_all over every completed
        // chunk) still equal the panic-free run.
        let config = ArchConfig::new_organization(8, 1);
        let patterns = ["abcd", "bcda", "zzz"];
        let chunks = chunks(); // chunk 2 contains "abcd", chunk 5 "bcda"
        let runtime_plain = runtime(2);
        let program = runtime_plain.compile_set(&patterns).unwrap();

        let count_per_pattern = |outcomes: &[MatchOutcome], inputs: &[Vec<u8>]| {
            let mut counts = vec![0usize; patterns.len()];
            for (outcome, input) in outcomes.iter().zip(inputs) {
                if outcome.is_complete() {
                    for id in cicero_isa::run_all(&program, input).matched_ids {
                        counts[usize::from(id)] += 1;
                    }
                }
            }
            counts
        };

        let plain = runtime_plain.run_batch_guarded(&program, &chunks, &config, &Budget::UNLIMITED);
        assert_eq!(plain.completed(), chunks.len());
        let expected = count_per_pattern(&plain.outcomes, &chunks);
        assert_eq!(expected, vec![1, 1, 0], "chunk fixtures drifted");

        let fired = Arc::new(AtomicUsize::new(0));
        let hook = {
            let fired = Arc::clone(&fired);
            Arc::new(move |index: usize| {
                if index == 2 && fired.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected fault on chunk 2");
                }
            })
        };
        let guarded_runtime = runtime(3).with_run_hook(hook);
        let batch = quietly(|| {
            guarded_runtime.run_batch_guarded(&program, &chunks, &config, &Budget::UNLIMITED)
        });
        assert!(batch.worker_restarts >= 1, "the injected panic must recycle a worker");
        assert_eq!(batch.completed(), chunks.len(), "{:?}", batch.outcomes);
        assert_eq!(count_per_pattern(&batch.outcomes, &chunks), expected);
    }

    #[test]
    fn traced_guarded_batch_yields_a_connected_span_tree() {
        use cicero_telemetry::TraceContext;
        let config = ArchConfig::new_organization(8, 1);
        let ctx = TraceContext::new("trace-batch");
        let root = ctx.root_span("request");
        let batch = runtime(3)
            .match_batch_guarded_traced(
                PATTERN,
                &chunks(),
                &config,
                &Budget::UNLIMITED,
                Some(&root),
            )
            .unwrap();
        drop(root);
        let trace = ctx.finish();

        // compile (with per-pass children) → execute → one span per worker.
        let compile = trace.span("compile").expect("compile span");
        assert!(compile.attrs.iter().any(|(k, v)| k == "cache_hit" && v.to_string() == "false"));
        let passes = trace.spans_with_prefix("pass:");
        assert!(!passes.is_empty(), "cache miss must backfill pass spans");
        assert!(passes.iter().all(|p| p.parent == Some(compile.id)));
        let execute = trace.span("execute").expect("execute span");
        let workers = trace.spans_with_prefix("sim.worker-");
        assert_eq!(workers.len(), batch.jobs);
        for worker in &workers {
            assert_eq!(worker.parent, Some(execute.id));
            for key in ["cycles", "icache_hits", "icache_misses", "inputs"] {
                assert!(
                    worker.attrs.iter().any(|(k, _)| k == key),
                    "worker span missing {key}: {:?}",
                    worker.attrs
                );
            }
        }
        // Connectivity: exactly one root; every parent id resolves.
        assert_eq!(trace.spans.iter().filter(|s| s.parent.is_none()).count(), 1);
        for span in &trace.spans {
            assert!(span.closed, "{} still open", span.name);
            if let Some(parent) = span.parent {
                assert!((parent as usize) < trace.spans.len());
            }
        }

        // A second traced run hits the cache: no pass spans this time.
        let ctx2 = TraceContext::new("trace-batch-2");
        let runtime2 = runtime(2);
        let root2 = ctx2.root_span("request");
        runtime2
            .match_batch_guarded_traced(
                PATTERN,
                &chunks(),
                &config,
                &Budget::UNLIMITED,
                Some(&root2),
            )
            .unwrap();
        runtime2
            .match_batch_guarded_traced(
                PATTERN,
                &chunks(),
                &config,
                &Budget::UNLIMITED,
                Some(&root2),
            )
            .unwrap();
        drop(root2);
        let trace2 = ctx2.finish();
        let compiles: Vec<_> = trace2.spans.iter().filter(|s| s.name == "compile").collect();
        assert_eq!(compiles.len(), 2);
        assert!(compiles[1].attrs.iter().any(|(k, v)| k == "cache_hit" && v.to_string() == "true"));
    }

    fn host_runtime(jobs: usize) -> Runtime {
        let compiler = cicero_core::CompilerOptions::optimized().with_backend(Backend::Host);
        Runtime::new(RuntimeOptions { jobs, compiler, ..RuntimeOptions::default() })
    }

    #[test]
    fn host_backend_agrees_with_sim_verdicts_and_positions() {
        let config = ArchConfig::new_organization(8, 1);
        let sim = runtime(2)
            .match_batch_guarded(PATTERN, &chunks(), &config, &Budget::UNLIMITED)
            .unwrap();
        let host = host_runtime(2)
            .match_batch_guarded(PATTERN, &chunks(), &config, &Budget::UNLIMITED)
            .unwrap();
        assert_eq!(host.outcomes.len(), sim.outcomes.len());
        for (h, s) in host.outcomes.iter().zip(&sim.outcomes) {
            let (h, s) = (h.report().unwrap(), s.report().unwrap());
            assert_eq!(h.accepted, s.accepted);
            assert_eq!(h.match_position, s.match_position);
        }
        assert_eq!(host.matches(), sim.matches());
    }

    #[test]
    fn host_fuel_is_a_byte_budget() {
        // 500 non-matching bytes under 8 bytes of fuel: the host engine
        // stops after 8 bytes and reports a clean fuel cut-off, exactly
        // like the sim path's 8-cycle cut-off.
        let config = ArchConfig::old_organization(1);
        let inputs = vec![vec![b'x'; 500]];
        let batch = host_runtime(1)
            .match_batch_guarded(PATTERN, &inputs, &config, &Budget::with_fuel(8))
            .unwrap();
        match &batch.outcomes[0] {
            MatchOutcome::Budget { kind: BudgetKind::Fuel, partial: Some(report) } => {
                assert_eq!(report.cycles, 8, "host cycles mean bytes examined");
                assert!(report.hit_cycle_limit);
                assert!(!report.accepted);
            }
            other => panic!("expected a fuel cut-off, got {other:?}"),
        }
        // A match inside the budget completes despite tight fuel.
        let batch = host_runtime(1)
            .match_batch_guarded(PATTERN, &[b"abcdxxxx".to_vec()], &config, &Budget::with_fuel(8))
            .unwrap();
        assert!(matches!(&batch.outcomes[0], MatchOutcome::Complete(r) if r.accepted));
    }

    #[test]
    fn explicit_backend_overrides_the_runtime_default() {
        // A sim-default runtime can serve a host request and vice versa,
        // with identical verdicts from the shared program cache entry.
        let config = ArchConfig::old_organization(1);
        let sim_runtime = runtime(1);
        let via_host = sim_runtime
            .match_batch_guarded_traced_on(
                Backend::Host,
                PATTERN,
                &chunks(),
                &config,
                &Budget::UNLIMITED,
                None,
            )
            .unwrap();
        assert_eq!(via_host.matches(), 2);
        // Second call on the other backend hits the same cache entry.
        let via_sim = sim_runtime
            .match_batch_guarded(PATTERN, &chunks(), &config, &Budget::UNLIMITED)
            .unwrap();
        assert!(via_sim.cache_hit, "backends must share one program cache entry");
        assert_eq!(via_sim.matches(), 2);
    }

    #[test]
    fn host_worker_panic_isolation_still_works() {
        // The injected hook panic exercises the host path's catch_unwind:
        // one retry succeeds and the batch completes.
        let config = ArchConfig::old_organization(1);
        let fired = Arc::new(AtomicUsize::new(0));
        let hook = {
            let fired = Arc::clone(&fired);
            Arc::new(move |index: usize| {
                if index == 3 && fired.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("injected fault on input 3");
                }
            })
        };
        let runtime = host_runtime(2).with_run_hook(hook);
        let batch = quietly(|| {
            runtime.match_batch_guarded(PATTERN, &chunks(), &config, &Budget::UNLIMITED).unwrap()
        });
        assert!(batch.worker_restarts >= 1);
        assert_eq!(batch.completed(), chunks().len(), "{:?}", batch.outcomes);
    }

    #[test]
    fn guarded_batch_handles_empty_input_sets() {
        let config = ArchConfig::old_organization(1);
        let batch =
            runtime(4).match_batch_guarded(PATTERN, &[], &config, &Budget::UNLIMITED).unwrap();
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.worker_restarts, 0);
    }
}
