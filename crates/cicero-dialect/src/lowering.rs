//! Lowering from the `regex` dialect to the `cicero` dialect.
//!
//! The lowering is a Thompson-style construction emitted directly in
//! instruction-memory order ("the process maps basic blocks to instruction
//! memory and inserts control instructions", §3). The layout discipline
//! reproduces the paper's Listing 2 exactly:
//!
//! * the implicit `.*` prefix becomes `L: SPLIT @body; MATCH_ANY; JMP @L`;
//! * an alternation emits its first branch, then the **shared
//!   continuation** (e.g. the acceptance op), then the remaining branches,
//!   each ending in a jump back to the continuation;
//! * every quantifier expands by copy (`min` mandatory copies, then a
//!   star/plus loop or a chain of optionals sharing one exit label).
//!
//! Character classes pick the cheaper of the two encodings of §3.3: a
//! split-tree of `MatchCharOp`s for the member set, or a
//! `NotMatchCharOp` chain over the complement followed by `MatchAnyOp`
//! (the encoding the paper shows for `[^ab]`).

use mlir_lite::{Attribute, Context, Operation, Pass, PassError};
use regex_dialect::ops as rx;

use crate::ops::{self, attrs};

/// Lower verified `regex.root` IR into a `cicero.program`.
///
/// # Panics
///
/// Panics if `root` is not well-formed `regex` dialect IR — run
/// [`mlir_lite::Context::verify`] first when handling untrusted IR.
pub fn lower_to_cicero(root: &Operation) -> Operation {
    assert!(root.is(rx::names::ROOT), "expected regex.root, got {}", root.name());
    let has_prefix =
        root.attr(rx::attrs::HAS_PREFIX).and_then(Attribute::as_bool).expect("verified");
    let has_suffix =
        root.attr(rx::attrs::HAS_SUFFIX).and_then(Attribute::as_bool).expect("verified");
    let mut e = Emitter::new();
    if has_prefix {
        let loop_label = e.fresh();
        let body = e.fresh();
        e.define_label(loop_label.clone());
        e.emit(ops::split(body.clone()));
        e.emit(ops::match_any());
        e.emit(ops::jump(loop_label));
        e.define_label(body);
    }
    let alternatives = &root.only_region().ops;
    let accept = move |e: &mut Emitter| {
        e.emit(if has_suffix { ops::accept_partial() } else { ops::accept() });
    };
    lower_branches(
        &mut e,
        alternatives.len(),
        BranchStyle::Root,
        &mut |e, i, next| lower_concat(e, &alternatives[i], next),
        Next::Inline(Box::new(accept)),
    );
    e.finish()
}

/// The lowering as a pass: replaces the `regex.root` tree under a wrapper
/// module with a `cicero.program`. Provided for completeness; the compiler
/// driver calls [`lower_to_cicero`] directly between its two dialects.
#[derive(Debug, Clone, Copy, Default)]
pub struct LowerToCiceroPass;

impl Pass for LowerToCiceroPass {
    fn name(&self) -> &'static str {
        "lower-regex-to-cicero"
    }

    fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
        if !root.is(rx::names::ROOT) {
            return Err(PassError::new(format!("expected regex.root, got {}", root.name())));
        }
        *root = lower_to_cicero(root);
        Ok(())
    }
}

/// How a lowered fragment continues.
enum Next<'a> {
    /// Emit the continuation inline, exactly once.
    Inline(Box<dyn FnOnce(&mut Emitter) + 'a>),
    /// The continuation already has a home: jump to it.
    Goto(String),
}

impl<'a> Next<'a> {
    fn resolve(self, e: &mut Emitter) {
        match self {
            Next::Inline(f) => f(e),
            Next::Goto(label) => e.emit(ops::jump(label)),
        }
    }
}

/// Instruction emitter with pending-label bookkeeping.
struct Emitter {
    body: Vec<Operation>,
    next_label: usize,
    /// Labels waiting to be attached to the next emitted op.
    pending: Vec<String>,
    /// Secondary labels folded into the canonical one they share an op with.
    aliases: Vec<(String, String)>,
}

impl Emitter {
    fn new() -> Emitter {
        Emitter { body: Vec::new(), next_label: 0, pending: Vec::new(), aliases: Vec::new() }
    }

    fn fresh(&mut self) -> String {
        let label = format!("L{}", self.next_label);
        self.next_label += 1;
        label
    }

    /// Attach `label` to the next emitted op.
    fn define_label(&mut self, label: String) {
        self.pending.push(label);
    }

    fn emit(&mut self, mut op: Operation) {
        if let Some(canonical) = self.pending.first().cloned() {
            op.set_attr(attrs::SYM_NAME, Attribute::Str(canonical.clone()));
            for extra in self.pending.drain(1..) {
                self.aliases.push((extra, canonical.clone()));
            }
            self.pending.clear();
        }
        self.body.push(op);
    }

    fn finish(mut self) -> Operation {
        assert!(self.pending.is_empty(), "labels defined past the end of the program");
        // Rewrite references through the alias map (a label that landed on
        // an op already carrying one).
        if !self.aliases.is_empty() {
            use std::collections::BTreeMap;
            let map: BTreeMap<&str, &str> =
                self.aliases.iter().map(|(a, c)| (a.as_str(), c.as_str())).collect();
            for op in &mut self.body {
                let target = ops::branch_target(op).map(str::to_owned);
                if let Some(target) = target {
                    let mut current = target.as_str();
                    while let Some(next) = map.get(current) {
                        current = next;
                    }
                    if current != target {
                        let resolved = current.to_owned();
                        op.set_attr(attrs::TARGET, Attribute::Symbol(resolved));
                    }
                }
            }
        }
        ops::program(self.body)
    }
}

/// Layout discipline for an alternation's shared continuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchStyle {
    /// Listing-2 root layout: branch 0, then the continuation (the
    /// acceptance op), then branches 1…n−1 jumping back to it.
    Root,
    /// Classic layout for nested alternations: all branches first, each
    /// ending in a jump to the join, continuation after the last branch.
    /// This keeps every enclosing construct contiguous in memory.
    Inner,
}

/// Lower an `n`-way branch list (alternation or positive character class).
fn lower_branches<'a>(
    e: &mut Emitter,
    n: usize,
    style: BranchStyle,
    emit_branch: &mut dyn FnMut(&mut Emitter, usize, Next<'a>),
    next: Next<'a>,
) {
    assert!(n > 0, "branch list cannot be empty");
    if n == 1 {
        emit_branch(e, 0, next);
        return;
    }
    let join = e.fresh();
    match style {
        BranchStyle::Root => {
            let rest = e.fresh();
            e.emit(ops::split(rest.clone()));
            emit_branch(e, 0, Next::Goto(join.clone()));
            e.define_label(join.clone());
            next.resolve(e);
            e.define_label(rest);
            for i in 1..n {
                if i + 1 < n {
                    let after = e.fresh();
                    e.emit(ops::split(after.clone()));
                    emit_branch(e, i, Next::Goto(join.clone()));
                    e.define_label(after);
                } else {
                    emit_branch(e, i, Next::Goto(join.clone()));
                }
            }
        }
        BranchStyle::Inner => {
            for i in 0..n {
                if i + 1 < n {
                    let after = e.fresh();
                    e.emit(ops::split(after.clone()));
                    emit_branch(e, i, Next::Goto(join.clone()));
                    e.define_label(after);
                } else {
                    // The last branch also jumps (Jump Simplification later
                    // removes the jump-to-next, as Listing 2 shows for the
                    // unoptimized layout).
                    emit_branch(e, i, Next::Goto(join.clone()));
                }
            }
            e.define_label(join);
            next.resolve(e);
        }
    }
}

/// Lower one `regex.concatenation`.
fn lower_concat<'a>(e: &mut Emitter, concat: &'a Operation, next: Next<'a>) {
    lower_pieces(e, &concat.only_region().ops, next)
}

fn lower_pieces<'a>(e: &mut Emitter, pieces: &'a [Operation], next: Next<'a>) {
    match pieces.split_first() {
        None => next.resolve(e),
        Some((first, rest)) => {
            let continuation = Next::Inline(Box::new(move |e: &mut Emitter| {
                lower_pieces(e, rest, next);
            }));
            lower_piece(e, first, continuation);
        }
    }
}

fn lower_piece<'a>(e: &mut Emitter, piece: &'a Operation, next: Next<'a>) {
    let (atom, quant) = rx::piece_parts(piece);
    match quant {
        None => lower_atom(e, atom, next),
        Some(q) => {
            let (min, max) = rx::quantifier_bounds(q);
            lower_quantified(e, atom, min, max, next);
        }
    }
}

/// Expand `atom{min,max}` by copy.
fn lower_quantified<'a>(
    e: &mut Emitter,
    atom: &'a Operation,
    min: u32,
    max: Option<u32>,
    next: Next<'a>,
) {
    if min > 0 {
        if max.is_none() && min == 1 {
            // `X+` gets the tight two-op form: `L: X; SPLIT @L` with the
            // split falling through to the continuation.
            let back = e.fresh();
            e.define_label(back.clone());
            let after = Next::Inline(Box::new(move |e: &mut Emitter| {
                e.emit(ops::split(back));
                next.resolve(e);
            }));
            lower_atom(e, atom, after);
            return;
        }
        let continuation = Next::Inline(Box::new(move |e: &mut Emitter| {
            lower_quantified(e, atom, min - 1, max.map(|m| m - 1), next);
        }));
        lower_atom(e, atom, continuation);
        return;
    }
    match max {
        // `X*`: `L: SPLIT @exit; X; JMP @L; exit:`.
        None => {
            let head = e.fresh();
            let exit = e.fresh();
            e.define_label(head.clone());
            e.emit(ops::split(exit.clone()));
            lower_atom(e, atom, Next::Goto(head));
            e.define_label(exit);
            next.resolve(e);
        }
        Some(0) => next.resolve(e),
        // `X{0,k}`: a chain of optionals sharing one exit label.
        Some(k) => {
            let exit = e.fresh();
            lower_optional_chain(e, atom, k, exit, next);
        }
    }
}

fn lower_optional_chain<'a>(
    e: &mut Emitter,
    atom: &'a Operation,
    remaining: u32,
    exit: String,
    next: Next<'a>,
) {
    if remaining == 0 {
        e.define_label(exit);
        next.resolve(e);
        return;
    }
    e.emit(ops::split(exit.clone()));
    let continuation = Next::Inline(Box::new(move |e: &mut Emitter| {
        lower_optional_chain(e, atom, remaining - 1, exit, next);
    }));
    lower_atom(e, atom, continuation);
}

fn lower_atom<'a>(e: &mut Emitter, atom: &'a Operation, next: Next<'a>) {
    match atom.name().as_str() {
        rx::names::MATCH_CHAR => {
            let c =
                atom.attr(rx::attrs::TARGET_CHAR).and_then(Attribute::as_char).expect("verified");
            e.emit(ops::match_char(c));
            next.resolve(e);
        }
        rx::names::MATCH_ANY_CHAR => {
            e.emit(ops::match_any());
            next.resolve(e);
        }
        rx::names::DOLLAR => {
            // `$` asserts end-of-input; in the ISA that is exact acceptance.
            // Anything after it is unreachable but continuations must still
            // be emitted exactly once.
            e.emit(ops::accept());
            next.resolve(e);
        }
        rx::names::GROUP => lower_group(e, atom, next),
        rx::names::SUB_REGEX => {
            let alternatives = &atom.only_region().ops;
            lower_branches(
                e,
                alternatives.len(),
                BranchStyle::Inner,
                &mut |e, i, next| lower_concat(e, &alternatives[i], next),
                next,
            );
        }
        other => panic!("unexpected regex atom {other}"),
    }
}

/// Lower a character class, choosing the cheaper §3.3 encoding.
fn lower_group<'a>(e: &mut Emitter, group: &Operation, next: Next<'a>) {
    let bits =
        group.attr(rx::attrs::TARGET_CHARS).and_then(Attribute::as_bool_array).expect("verified");
    let members: Vec<u8> = (0..=255u8).filter(|c| bits[usize::from(*c)]).collect();
    let complement: Vec<u8> = (0..=255u8).filter(|c| !bits[usize::from(*c)]).collect();
    // A positive branch costs ~3 ops per member (split, match, jump); the
    // negated encoding costs 1 op per excluded char plus one MATCH_ANY.
    let positive_cost = 3 * members.len();
    let negated_cost = complement.len() + 1;
    if positive_cost <= negated_cost || complement.is_empty() {
        lower_branches(
            e,
            members.len(),
            BranchStyle::Inner,
            &mut |e, i, next| {
                e.emit(ops::match_char(members[i]));
                next.resolve(e);
            },
            next,
        );
    } else {
        // `[^ab]` → `NotMatch(a); NotMatch(b); MatchAny` (§3.3).
        for c in complement {
            e.emit(ops::not_match_char(c));
        }
        e.emit(ops::match_any());
        next.resolve(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::codegen;
    use cicero_isa::Instruction;
    use mlir_lite::Context;

    fn lower(pattern: &str) -> Operation {
        let ast = regex_frontend::parse(pattern).unwrap();
        let ir = regex_dialect::ast_to_ir(&ast);
        let program = lower_to_cicero(&ir);
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        ctx.verify(&program).expect("lowering must produce verified IR");
        program
    }

    fn asm(pattern: &str) -> Vec<Instruction> {
        codegen(&lower(pattern)).unwrap().instructions().to_vec()
    }

    #[test]
    fn listing2_no_opt_layout() {
        use Instruction::*;
        // `ab|cd` with implicit `.*` — the exact left column of Listing 2.
        assert_eq!(
            asm("ab|cd"),
            vec![
                Split(3),
                MatchAny,
                Jump(0),
                Split(8),
                Match(b'a'),
                Match(b'b'),
                Jump(7),
                AcceptPartial,
                Match(b'c'),
                Match(b'd'),
                Jump(7),
            ]
        );
    }

    #[test]
    fn anchored_pattern_uses_exact_accept_and_no_prefix_loop() {
        use Instruction::*;
        assert_eq!(asm("^ab$"), vec![Match(b'a'), Match(b'b'), Accept]);
    }

    #[test]
    fn star_and_plus_forms() {
        use Instruction::*;
        // `^a*$`: L: SPLIT @exit; MATCH a; JMP @L; exit: ACCEPT.
        assert_eq!(asm("^a*$"), vec![Split(3), Match(b'a'), Jump(0), Accept]);
        // `^a+$`: L: MATCH a; SPLIT @L; ACCEPT.
        assert_eq!(asm("^a+$"), vec![Match(b'a'), Split(0), Accept]);
    }

    #[test]
    fn counted_quantifiers_expand_by_copy() {
        use Instruction::*;
        // `^a{2,4}$` = a a (a (a)?)? with one shared exit.
        assert_eq!(
            asm("^a{2,4}$"),
            vec![Match(b'a'), Match(b'a'), Split(6), Match(b'a'), Split(6), Match(b'a'), Accept,]
        );
    }

    #[test]
    fn unbounded_min_form() {
        use Instruction::*;
        // `^a{2,}$` = a then the tight plus loop on the second copy.
        assert_eq!(asm("^a{2,}$"), vec![Match(b'a'), Match(b'a'), Split(1), Accept]);
    }

    #[test]
    fn negated_class_lowering_matches_paper() {
        use Instruction::*;
        // `[^ab]` (anchored to skip the prefix loop):
        // NotMatch(a); NotMatch(b); MatchAny (§3.3).
        assert_eq!(asm("^[^ab]$"), vec![NotMatch(b'a'), NotMatch(b'b'), MatchAny, Accept]);
    }

    #[test]
    fn small_positive_class_uses_split_tree() {
        // Inner alternations use the classic join-at-end layout, keeping
        // the class contiguous in instruction memory.
        let code = asm("^[ab]$");
        use Instruction::*;
        assert_eq!(code, vec![Split(3), Match(b'a'), Jump(5), Match(b'b'), Jump(5), Accept]);
    }

    #[test]
    fn wide_positive_class_uses_negated_encoding() {
        // `[a-z]` has 26 members (78 ops positive) vs 230 excluded + 1 —
        // positive wins; `.`-minus-two (254 members) must flip to negated.
        let code = asm("^[^\\n\\r]$");
        assert_eq!(code.len(), 4, "{code:?}"); // NotMatch, NotMatch, MatchAny, Accept
    }

    #[test]
    fn three_way_alternation_shares_one_acceptance() {
        let code = asm("^a|b|c$");
        let accepts = code.iter().filter(|i| i.is_acceptance()).count();
        assert_eq!(accepts, 1, "{code:?}");
    }

    #[test]
    fn empty_alternative_jumps_straight_to_join() {
        // `ab|` — second branch is empty.
        let program = lower("^ab|$");
        let body = &program.only_region().ops;
        assert!(body.last().unwrap().is(crate::names::JUMP), "{program}");
    }

    #[test]
    fn lowering_is_deterministic() {
        assert_eq!(lower("a(b|c)*d"), lower("a(b|c)*d"));
    }

    #[test]
    fn pass_wrapper_rejects_wrong_root() {
        let mut op = ops::accept();
        assert!(LowerToCiceroPass.run(&mut op, &Context::new()).is_err());
    }
}

/// Lower a *set* of patterns into one multi-matching `cicero.program`
/// (the paper's Future Work: "the execution engine could return the RE
/// identifiers when a match occurs").
///
/// Each pattern `i`'s branches terminate in `cicero.accept_partial_id(i)`,
/// so the engine halts on the first match and reports which RE fired. A
/// single shared `.*` scan loop feeds all patterns.
///
/// # Errors
///
/// Returns an error message if any pattern is anchored (`^`/`$`): in a
/// combined scan every pattern is re-entered at every input position, so
/// only match-anywhere patterns compose. (This mirrors multi-pattern DPI
/// engines, which operate on unanchored signatures.)
pub fn lower_multi(roots: &[&Operation]) -> Result<Operation, String> {
    if roots.is_empty() {
        return Err("multi-matching needs at least one pattern".to_owned());
    }
    if roots.len() > usize::from(cicero_isa::MAX_OPERAND) {
        return Err(format!("at most {} patterns are addressable", cicero_isa::MAX_OPERAND));
    }
    for (i, root) in roots.iter().enumerate() {
        assert!(root.is(rx::names::ROOT), "expected regex.root, got {}", root.name());
        let anchored = |key| root.attr(key).and_then(Attribute::as_bool) != Some(true);
        if anchored(rx::attrs::HAS_PREFIX) || anchored(rx::attrs::HAS_SUFFIX) {
            return Err(format!(
                "pattern {i} is anchored; multi-matching requires unanchored patterns"
            ));
        }
    }
    let mut e = Emitter::new();
    // One shared scan loop.
    let loop_label = e.fresh();
    let body = e.fresh();
    e.define_label(loop_label.clone());
    e.emit(ops::split(body.clone()));
    e.emit(ops::match_any());
    e.emit(ops::jump(loop_label));
    e.define_label(body);
    // Chain of splits fanning out to each pattern's body; each body ends
    // in its own identified acceptance.
    for (i, root) in roots.iter().enumerate() {
        let next_pattern = if i + 1 < roots.len() {
            let label = e.fresh();
            e.emit(ops::split(label.clone()));
            Some(label)
        } else {
            None
        };
        let alternatives = &root.only_region().ops;
        let id = i as u16;
        lower_branches(
            &mut e,
            alternatives.len(),
            BranchStyle::Inner,
            &mut |e, k, next| lower_concat(e, &alternatives[k], next),
            Next::Inline(Box::new(move |e: &mut Emitter| {
                e.emit(ops::accept_partial_id(id));
            })),
        );
        if let Some(label) = next_pattern {
            e.define_label(label);
        }
    }
    Ok(e.finish())
}

#[cfg(test)]
mod multi_tests {
    use super::*;
    use crate::codegen::codegen;
    use crate::jump_simplify::jump_simplify;
    use cicero_isa::Instruction;
    use mlir_lite::Context;

    fn lower_set(patterns: &[&str]) -> cicero_isa::Program {
        let irs: Vec<Operation> = patterns
            .iter()
            .map(|p| regex_dialect::ast_to_ir(&regex_frontend::parse(p).unwrap()))
            .collect();
        let refs: Vec<&Operation> = irs.iter().collect();
        let mut program = lower_multi(&refs).unwrap();
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        ctx.verify(&program).expect("multi lowering must verify");
        jump_simplify(&mut program);
        ctx.verify(&program).expect("still valid after simplification");
        codegen(&program).unwrap()
    }

    #[test]
    fn reports_the_matching_pattern_id() {
        let program = lower_set(&["abc", "xyz", "q+r"]);
        assert_eq!(cicero_isa::run(&program, b"__abc__").matched_id, Some(0));
        assert_eq!(cicero_isa::run(&program, b"__xyz__").matched_id, Some(1));
        assert_eq!(cicero_isa::run(&program, b"__qqr__").matched_id, Some(2));
        let miss = cicero_isa::run(&program, b"nothing");
        assert!(!miss.accepted);
        assert_eq!(miss.matched_id, None);
    }

    #[test]
    fn single_program_is_smaller_than_the_sum_of_parts() {
        // The shared scan loop is emitted once instead of once per RE.
        let combined = lower_set(&["abc", "xyz"]);
        let separate: usize = ["abc", "xyz"]
            .iter()
            .map(|p| {
                let ir = regex_dialect::ast_to_ir(&regex_frontend::parse(p).unwrap());
                let mut prog = lower_to_cicero(&ir);
                jump_simplify(&mut prog);
                codegen(&prog).unwrap().len()
            })
            .sum();
        assert!(combined.len() < separate, "{} vs {separate}", combined.len());
    }

    #[test]
    fn acceptance_ids_survive_jump_simplification() {
        let program = lower_set(&["aa|bb", "cc"]);
        use Instruction::*;
        let ids: Vec<u16> = program
            .instructions()
            .iter()
            .filter_map(|i| match i {
                AcceptPartialId(id) => Some(*id),
                _ => None,
            })
            .collect();
        assert!(ids.contains(&0) && ids.contains(&1), "{program}");
        // Jump Simplification's acceptance duplication must have preserved
        // ids: both `aa` and `bb` branches report 0.
        assert!(ids.iter().filter(|id| **id == 0).count() >= 2, "{program}");
    }

    #[test]
    fn anchored_patterns_are_rejected() {
        let irs: Vec<Operation> = ["^abc", "xyz"]
            .iter()
            .map(|p| regex_dialect::ast_to_ir(&regex_frontend::parse(p).unwrap()))
            .collect();
        let refs: Vec<&Operation> = irs.iter().collect();
        assert!(lower_multi(&refs).is_err());
    }
}
