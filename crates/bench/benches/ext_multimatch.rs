//! **Extension bench** — the Future-Work multi-matching ISA: one combined
//! program with identified acceptances versus scanning each RE
//! separately. The win comes from sharing the scan and halting the moment
//! *any* RE matches.

use cicero_bench::{banner, f2, suites, Scale, Table};
use cicero_sim::{simulate_batch, ArchConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Extension", "multi-matching: one-pass set vs per-RE scans (NEW 16x1)", scale);
    let config = ArchConfig::new_organization(16, 1);
    let compiler = cicero_core::Compiler::new();
    let mut table = Table::new(vec![
        "suite",
        "set size [instr]",
        "per-RE cycles",
        "one-pass cycles",
        "speedup",
    ]);
    for bench in suites(scale) {
        // Use the simple suites' patterns as the signature set.
        let set = compiler.compile_set(&bench.patterns).expect("suite compiles as a set");
        let singles: Vec<cicero_isa::Program> = bench
            .patterns
            .iter()
            .map(|p| compiler.compile(p).expect("compiles").into_program())
            .collect();
        let mut per_re = 0u64;
        for program in &singles {
            for report in simulate_batch(program, &bench.chunks, &config) {
                per_re += report.cycles;
            }
        }
        let mut one_pass = 0u64;
        for report in simulate_batch(set.program(), &bench.chunks, &config) {
            one_pass += report.cycles;
        }
        table.row(vec![
            bench.name.to_owned(),
            set.program().len().to_string(),
            per_re.to_string(),
            one_pass.to_string(),
            format!("{}x", f2(per_re as f64 / one_pass as f64)),
        ]);
    }
    table.print();
    println!("\n  note: the one-pass program answers a weaker question (did ANY RE match,");
    println!("  and which one fired first) — exactly the alternate-benchmark scenario of §6");
}
