//! The high-level `regex` MLIR dialect (§3.1 of the paper) and its
//! transformations (§3.2).
//!
//! The dialect gives regular expressions a flexible, architecture-agnostic
//! IR. Its operations mirror Table 3:
//!
//! | RE operator | Operation             | Arguments                        |
//! |-------------|-----------------------|----------------------------------|
//! | root        | `regex.root`          | `has_prefix`, `has_suffix` bools |
//! | `\|`        | `regex.concatenation` | (siblings in the parent region)  |
//! | `* + ? {}`  | `regex.quantifier`    | `min`, `max` (−1 = unbounded)    |
//! | literal     | `regex.match_char`    | `target_char`                    |
//! | `.`         | `regex.match_any_char`| —                                |
//! | `[...]`     | `regex.group`         | 256-entry `target_chars` bitmap  |
//! | `(...)`     | `regex.sub_regex`     | —                                |
//! | `$`         | `regex.dollar`        | —                                |
//!
//! plus `regex.piece`, the wrapper pairing an atom with an optional
//! quantifier.
//!
//! One deliberate deviation from the paper's Listing 1: there the piece for
//! `c{3,6}` materializes `min` copies of the atom inside the piece region.
//! Here a piece holds exactly **one atom and at most one quantifier**; the
//! copy materialization happens during lowering. The two forms encode the
//! same language and the single-atom invariant keeps every §3.2
//! transformation a local rewrite.
//!
//! Negated classes are resolved to their complement bitmap at AST→IR
//! conversion; the Cicero lowering later picks `NotMatchCharOp` chains when
//! the complement is the cheaper encoding (§3.3).
//!
//! The three transformation sets (each independently toggleable, §3.2):
//!
//! 1. [`transforms::CanonicalizePass`] — sub-regex simplification, e.g.
//!    `(abc) → abc`, `(a+) → a+`, `(a)+ → a+`, while `(abc)+` and
//!    `(a{2,3}){4,7}` are preserved;
//! 2. [`transforms::FactorizeAlternationsPass`] — alternation prefix
//!    factorization, e.g. `this|that|those → th(is|at|ose)` and
//!    `a(bc|bd) → a(b(c|d))`;
//! 3. [`transforms::ShortestMatchPass`] — boundary quantifier reduction for
//!    any-match engines, e.g. `a{2,3}|b{4,5} → a{2}|b{4}`,
//!    `abcd*|efgh+ → abc|efgh`, with `ab*$` untouched.
//!
//! # Example
//!
//! ```
//! use mlir_lite::{Context, PassManager};
//!
//! let ast = regex_frontend::parse("this|that|those")?;
//! let mut ir = regex_dialect::ast_to_ir(&ast);
//! let mut ctx = Context::new();
//! ctx.register_dialect(regex_dialect::dialect());
//! let mut pm = PassManager::new();
//! pm.add_pass(Box::new(regex_dialect::transforms::FactorizeAlternationsPass));
//! pm.add_pass(Box::new(regex_dialect::transforms::CanonicalizePass));
//! pm.run(&mut ir, &ctx).map_err(|e| e.to_string())?;
//! assert_eq!(regex_dialect::ir_to_pattern(&ir), "th(is|at|ose)");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod convert;
pub mod ops;
pub mod pattern;
pub mod transforms;

pub use convert::{ast_to_ir, ir_to_ast};
pub use ops::{dialect, names};
pub use pattern::ir_to_pattern;
