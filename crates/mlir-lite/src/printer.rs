//! Textual IR printer.
//!
//! The format is a compact cousin of MLIR's generic operation form:
//!
//! ```text
//! op          ::= op-name attr-dict? region-list?
//! attr-dict   ::= '{' (ident '=' attr-value),* '}'
//! region-list ::= '(' region (',' region)* ')'
//! region      ::= '{' op* '}'
//! ```
//!
//! Because region lists are always parenthesized, a `{` directly after the
//! op name is unambiguously the attribute dictionary. The output of
//! [`print_op`] is accepted by [`crate::parser::parse`], and round-tripping
//! is covered by property tests.

use std::fmt::Write as _;

use crate::op::Operation;

/// Width of one indentation step, in spaces.
const INDENT: usize = 2;

/// Print an operation subtree to its textual form.
pub fn print_op(op: &Operation) -> String {
    let mut out = String::new();
    print_rec(op, 0, &mut out);
    out
}

fn print_rec(op: &Operation, depth: usize, out: &mut String) {
    let pad = " ".repeat(depth * INDENT);
    let _ = write!(out, "{pad}{}", op.name());
    if op.attr_count() > 0 {
        let attrs: Vec<String> = op.attrs().map(|(k, v)| format!("{k} = {v}")).collect();
        let _ = write!(out, " {{{}}}", attrs.join(", "));
    }
    if !op.regions().is_empty() {
        let _ = writeln!(out, " (");
        for (i, region) in op.regions().iter().enumerate() {
            let rpad = " ".repeat((depth + 1) * INDENT);
            let _ = writeln!(out, "{rpad}{{");
            for child in &region.ops {
                print_rec(child, depth + 2, out);
            }
            let sep = if i + 1 < op.regions().len() { "," } else { "" };
            let _ = writeln!(out, "{rpad}}}{sep}");
        }
        let _ = writeln!(out, "{pad})");
    } else {
        let _ = writeln!(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;
    use crate::op::Region;

    #[test]
    fn leaf_with_attrs() {
        let mut op = Operation::new("regex.quantifier");
        op.set_attr("min", 3i64);
        op.set_attr("max", 6i64);
        assert_eq!(print_op(&op).trim(), "regex.quantifier {max = 6, min = 3}");
    }

    #[test]
    fn bare_leaf() {
        assert_eq!(
            print_op(&Operation::new("regex.match_any_char")).trim(),
            "regex.match_any_char"
        );
    }

    #[test]
    fn nested_regions_indent() {
        let leaf =
            Operation::new("regex.match_char").with_attr("target_char", Attribute::Char(b'a'));
        let root = Operation::new("regex.root")
            .with_attr("has_prefix", true)
            .with_region(Region::with_ops(vec![leaf.clone()]))
            .with_region(Region::with_ops(vec![leaf]));
        let text = print_op(&root);
        let expected = "\
regex.root {has_prefix = true} (
  {
    regex.match_char {target_char = 'a'}
  },
  {
    regex.match_char {target_char = 'a'}
  }
)
";
        assert_eq!(text, expected);
    }

    #[test]
    fn empty_region_prints_braces() {
        let op = Operation::new("t.wrap").with_region(Region::new());
        let text = print_op(&op);
        assert!(text.contains("{\n  }"), "{text}");
    }
}
