//! The high-level transformation sets of §3.2.
//!
//! Each set is an independent [`Pass`](mlir_lite::Pass), mirroring the
//! paper's "each transformation is optional and can be enabled or disabled
//! individually by toggling different compiler options":
//!
//! * [`CanonicalizePass`] — sub-regex simplification (set 1);
//! * [`FactorizeAlternationsPass`] — alternation prefix factorization
//!   (set 2);
//! * [`ShortestMatchPass`] — boundary quantifier reduction for any-match
//!   engines (set 3, the only semantics-changing one: it preserves *whether
//!   a match exists*, not the match extent);
//! * [`ShortestMatchLeadingPass`] — the symmetric reduction at the leading
//!   boundary, an extension beyond the paper (off by default).

mod factorize;
mod shortest_match;
mod simplify;

pub use factorize::FactorizeAlternationsPass;
pub use shortest_match::{ShortestMatchLeadingPass, ShortestMatchPass};
pub use simplify::CanonicalizePass;

#[cfg(test)]
mod equivalence_tests;
