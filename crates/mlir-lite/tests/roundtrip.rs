//! Property tests: the printer and parser are exact inverses over the
//! whole attribute and region space.

use mlir_lite::{Attribute, Operation, Region};
use proptest::prelude::*;

fn attr_strategy() -> impl Strategy<Value = Attribute> {
    prop_oneof![
        any::<bool>().prop_map(Attribute::Bool),
        any::<i64>().prop_map(Attribute::Int),
        any::<u8>().prop_map(Attribute::Char),
        // Printable-ish strings including characters that need escaping.
        prop::collection::vec(
            prop_oneof![prop::char::range(' ', '~'), Just('"'), Just('\\'), Just('\n'),],
            0..12
        )
        .prop_map(|cs| Attribute::Str(cs.into_iter().collect())),
        "[a-z][a-z0-9_]{0,8}".prop_map(Attribute::Symbol),
        prop::collection::vec(any::<bool>(), 0..64).prop_map(Attribute::BoolArray),
    ]
}

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

fn op_strategy() -> impl Strategy<Value = Operation> {
    let leaf = (ident_strategy(), prop::collection::vec((ident_strategy(), attr_strategy()), 0..4))
        .prop_map(|(name, attrs)| {
            let mut op = Operation::new(format!("t.{name}"));
            for (key, value) in attrs {
                op.set_attr(key, value);
            }
            op
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            ident_strategy(),
            prop::collection::vec((ident_strategy(), attr_strategy()), 0..3),
            prop::collection::vec(prop::collection::vec(inner, 0..3), 0..3),
        )
            .prop_map(|(name, attrs, regions)| {
                let mut op = Operation::new(format!("t.{name}"));
                for (key, value) in attrs {
                    op.set_attr(key, value);
                }
                for ops in regions {
                    op.push_region(Region::with_ops(ops));
                }
                op
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_roundtrip(op in op_strategy()) {
        let text = op.to_text();
        let parsed = mlir_lite::parse(&text)
            .unwrap_or_else(|e| panic!("unparsable output {text:?}: {e}"));
        prop_assert_eq!(parsed, op);
    }

    #[test]
    fn printing_is_deterministic(op in op_strategy()) {
        prop_assert_eq!(op.to_text(), op.clone().to_text());
    }

    #[test]
    fn subtree_size_consistent_with_walk(op in op_strategy()) {
        let mut visited = 0usize;
        op.walk(&mut |_| visited += 1);
        prop_assert_eq!(visited, op.subtree_size());
    }
}
