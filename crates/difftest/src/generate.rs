//! Seeded random generation of patterns and adversarial inputs.
//!
//! The generator covers the **full supported grammar** — nested groups,
//! negated classes, bounded repeats, anchors, multi-way alternation —
//! where `tests/proptest_properties.rs` deliberately stays tiny. Every
//! emitted pattern is round-tripped through the real front-end parser, so
//! the harness never wastes a case on syntax the workspace rejects.
//!
//! Inputs are built per pattern: a *witness* (a string constructed by
//! walking the AST, so matches actually occur), the witness embedded in
//! noise or truncated into a near-miss, random draws over the pattern's
//! own alphabet, high-byte/non-ASCII noise, and long single-byte runs
//! that stress pathological quantifier nesting.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use regex_frontend::{
    Alternation, Atom, ClassSet, Concatenation, Piece, Quantifier, RegexAst, Span,
};

/// The literal alphabet patterns are mostly drawn from; inputs reuse it so
/// matches are likely.
const LITERALS: &[u8] = b"abcdefgh";

/// Rare bytes mixed into both patterns and inputs: NUL, newline, space,
/// DEL, the 0x80 non-ASCII boundary, a UTF-8 lead byte, 0xff, and bytes
/// that are metacharacters when unescaped.
const RARE_BYTES: &[u8] = &[0x00, 0x0a, 0x20, 0x7f, 0x80, 0xc3, 0xff, b'.', b'*', b'(', b'['];

/// A deterministic, seedable source of patterns and inputs.
pub struct Generator {
    rng: StdRng,
}

impl Generator {
    /// A generator whose whole output stream is a function of `seed`.
    pub fn new(seed: u64) -> Generator {
        Generator { rng: StdRng::seed_from_u64(seed) }
    }

    /// The next random pattern, already validated against the front-end
    /// (the parsed AST is returned alongside the text so callers never
    /// re-parse). Falls back to a trivial literal if rejection sampling
    /// somehow fails repeatedly.
    pub fn pattern(&mut self) -> (String, RegexAst) {
        for _ in 0..64 {
            let ast = if self.rng.random_bool(0.15) {
                self.adversarial_template()
            } else {
                self.random_ast()
            };
            let text = ast.to_pattern();
            if text.len() > 120 {
                continue; // keep reproducers and compile times reasonable
            }
            if let Ok(parsed) = regex_frontend::parse(&text) {
                return (text, parsed);
            }
        }
        let fallback = "a".to_owned();
        let ast = regex_frontend::parse(&fallback).expect("literal parses");
        (fallback, ast)
    }

    /// The canned input shapes for one pattern (empty, witness-in-noise,
    /// near-miss, alphabet noise, single-byte run, high-byte noise).
    pub fn inputs(&mut self, ast: &RegexAst) -> Vec<Vec<u8>> {
        let alphabet = input_alphabet(ast);
        let witness = self.witness(ast).unwrap_or_default();
        let mut inputs = Vec::with_capacity(6);
        inputs.push(Vec::new());
        inputs.push(self.embed_in_noise(ast, &witness, &alphabet));
        if !witness.is_empty() {
            // Near-miss: the witness minus its final byte.
            inputs.push(witness[..witness.len() - 1].to_vec());
        }
        inputs.push(self.noise(&alphabet, 40));
        inputs.push(vec![*pick(&mut self.rng, &alphabet); self.rng.random_range(16usize..=48)]);
        inputs.push(self.noise(RARE_BYTES, 12));
        inputs
    }

    /// A random chunk-split vector for the streaming axis: 1–4 split
    /// points drawn over the longest input (shorter inputs simply ignore
    /// the out-of-range points). Biased toward small positions so splits
    /// frequently land inside the witness match near the input's start.
    pub fn splits(&mut self, inputs: &[Vec<u8>]) -> Vec<usize> {
        let max_len = inputs.iter().map(Vec::len).max().unwrap_or(0);
        if max_len < 2 {
            return Vec::new();
        }
        let n = self.rng.random_range(1usize..=4);
        (0..n)
            .map(|_| {
                if self.rng.random_bool(0.5) {
                    self.rng.random_range(1usize..=8.min(max_len - 1))
                } else {
                    self.rng.random_range(1usize..max_len)
                }
            })
            .collect()
    }

    // ---- patterns ----------------------------------------------------

    fn random_ast(&mut self) -> RegexAst {
        RegexAst {
            has_prefix: !self.rng.random_bool(0.2),
            has_suffix: !self.rng.random_bool(0.2),
            alternation: self.alternation(2),
        }
    }

    fn alternation(&mut self, depth: u32) -> Alternation {
        let n = self.rng.random_range(1usize..=3);
        let alternatives = (0..n).map(|_| self.concatenation(depth)).collect();
        Alternation { alternatives, span: Span::default() }
    }

    fn concatenation(&mut self, depth: u32) -> Concatenation {
        // Allow empty concatenations: `a|` style empty alternatives are
        // part of the supported grammar and a classic divergence hideout.
        let n = if self.rng.random_bool(0.08) { 0 } else { self.rng.random_range(1usize..=4) };
        let pieces = (0..n).map(|_| self.piece(depth)).collect();
        Concatenation { pieces, span: Span::default() }
    }

    fn piece(&mut self, depth: u32) -> Piece {
        Piece { atom: self.atom(depth), quantifier: self.quantifier(), span: Span::default() }
    }

    fn quantifier(&mut self) -> Option<Quantifier> {
        if self.rng.random_bool(0.6) {
            return None;
        }
        Some(match self.rng.random_range(0u32..6) {
            0 => Quantifier::STAR,
            1 => Quantifier::PLUS,
            2 => Quantifier::OPT,
            3 => {
                let m = self.rng.random_range(1u32..=3);
                Quantifier::range(m, Some(m))
            }
            4 => {
                let m = self.rng.random_range(0u32..=2);
                let extra = self.rng.random_range(1u32..=3);
                Quantifier::range(m, Some(m + extra))
            }
            _ => Quantifier::range(self.rng.random_range(1u32..=2), None),
        })
    }

    fn atom(&mut self, depth: u32) -> Atom {
        let roll = self.rng.random_range(0u32..100);
        if roll < 45 {
            Atom::Char(self.literal_byte())
        } else if roll < 55 {
            Atom::Any
        } else if roll < 78 || depth == 0 {
            self.class()
        } else {
            Atom::Group(Box::new(self.alternation(depth - 1)))
        }
    }

    fn literal_byte(&mut self) -> u8 {
        if self.rng.random_bool(0.12) {
            *pick(&mut self.rng, RARE_BYTES)
        } else {
            *pick(&mut self.rng, LITERALS)
        }
    }

    fn class(&mut self) -> Atom {
        let mut set = ClassSet::empty();
        for _ in 0..self.rng.random_range(1usize..=3) {
            if self.rng.random_bool(0.4) {
                let lo = self.literal_byte();
                let width = self.rng.random_range(1u8..=3);
                set.insert_range(lo, lo.saturating_add(width));
            } else {
                set.insert(self.literal_byte());
            }
        }
        Atom::Class { negated: self.rng.random_bool(0.3), set }
    }

    /// Known-pathological shapes (catastrophic-backtracking classics,
    /// shortest-match boundary cases) instantiated with random letters.
    fn adversarial_template(&mut self) -> RegexAst {
        let a = *pick(&mut self.rng, LITERALS);
        let b = *pick(&mut self.rng, LITERALS);
        let template = match self.rng.random_range(0u32..6) {
            // (a*)*b — nested unbounded stars.
            0 => format!("({}*)*{}", a as char, b as char),
            // (a|a)*b — ambiguous alternation under a star.
            1 => format!("({0}|{0})*{1}", a as char, b as char),
            // (a?){3}b — bounded repeat of an optional.
            2 => format!("({}?){{3}}{}", a as char, b as char),
            // (a+)+ — star-of-plus.
            3 => format!("({}+)+", a as char),
            // abc|ab|a — shared-prefix alternation (factorization food).
            4 => format!("{0}{1}{0}|{0}{1}|{0}", a as char, b as char),
            // a{2,5}$ — trailing bounded repeat (shortest-match food).
            _ => format!("{}{{2,5}}$", a as char),
        };
        let anchored = if self.rng.random_bool(0.3) { format!("^{template}") } else { template };
        regex_frontend::parse(&anchored).unwrap_or_else(|_| self.random_ast())
    }

    // ---- inputs ------------------------------------------------------

    /// A string built by walking the AST: pick an alternative, repeat each
    /// atom its minimum count (sometimes one more), always emitting a byte
    /// the atom accepts. By construction the pattern matches the result —
    /// unless the walk blows the length budget, in which case `None` is
    /// returned rather than an unsound truncation.
    pub(crate) fn witness(&mut self, ast: &RegexAst) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        if self.witness_alternation(&ast.alternation, &mut out) {
            Some(out)
        } else {
            None
        }
    }

    /// Returns `false` when the 64-byte budget is exceeded mid-walk.
    fn witness_alternation(&mut self, alt: &Alternation, out: &mut Vec<u8>) -> bool {
        let i = self.rng.random_range(0usize..alt.alternatives.len());
        let concat = &alt.alternatives[i];
        for piece in &concat.pieces {
            let min = piece.quantifier.map_or(1, |q| q.min);
            let extra =
                u32::from(piece.quantifier.is_some_and(|q| {
                    q.max.is_none_or(|max| max > min) && self.rng.random_bool(0.5)
                }));
            for _ in 0..(min + extra) {
                if out.len() >= 64 {
                    return false;
                }
                if !self.witness_atom(&piece.atom, out) {
                    return false;
                }
            }
        }
        true
    }

    fn witness_atom(&mut self, atom: &Atom, out: &mut Vec<u8>) -> bool {
        match atom {
            Atom::Char(c) => out.push(*c),
            Atom::Any => out.push(*pick(&mut self.rng, LITERALS)),
            Atom::Class { negated, set } => {
                let effective = if *negated { set.complement() } else { set.clone() };
                let members: Vec<u8> = effective.iter().take(16).collect();
                if members.is_empty() {
                    return false; // class accepts nothing; no witness exists
                }
                out.push(*pick(&mut self.rng, &members));
            }
            Atom::Group(alt) => return self.witness_alternation(alt, out),
        }
        true
    }

    /// Surround the witness with noise, but only on sides the anchors
    /// leave open — an anchored pattern with noise against the anchor
    /// would turn the guaranteed match into a coin flip.
    fn embed_in_noise(&mut self, ast: &RegexAst, witness: &[u8], alphabet: &[u8]) -> Vec<u8> {
        let mut input = Vec::new();
        if ast.has_prefix {
            input.extend(self.noise(alphabet, 8));
        }
        input.extend_from_slice(witness);
        if ast.has_suffix {
            input.extend(self.noise(alphabet, 8));
        }
        input
    }

    fn noise(&mut self, alphabet: &[u8], max_len: usize) -> Vec<u8> {
        let len = self.rng.random_range(0usize..=max_len);
        (0..len).map(|_| *pick(&mut self.rng, alphabet)).collect()
    }
}

/// Bytes worth feeding a pattern: its own literals and class members, one
/// non-member per class (to exercise rejection edges), plus a fixed set of
/// boundary bytes.
fn input_alphabet(ast: &RegexAst) -> Vec<u8> {
    let mut bytes = Vec::new();
    collect_alternation(&ast.alternation, &mut bytes);
    bytes.extend_from_slice(b"az");
    bytes.extend_from_slice(&[0x00, 0x7f, 0xff]);
    bytes.sort_unstable();
    bytes.dedup();
    bytes
}

fn collect_alternation(alt: &Alternation, out: &mut Vec<u8>) {
    for concat in &alt.alternatives {
        for piece in &concat.pieces {
            match &piece.atom {
                Atom::Char(c) => out.push(*c),
                Atom::Any => {}
                Atom::Class { set, .. } => {
                    out.extend(set.iter().take(4));
                    // One byte just outside the written set.
                    out.extend(set.complement().iter().take(1));
                }
                Atom::Group(inner) => collect_alternation(inner, out),
            }
        }
    }
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.random_range(0usize..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Generator::new(7);
        let mut b = Generator::new(7);
        for _ in 0..50 {
            let (pa, asta) = a.pattern();
            let (pb, _) = b.pattern();
            assert_eq!(pa, pb);
            assert_eq!(a.inputs(&asta), b.inputs(&asta));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let patterns = |seed| {
            let mut g = Generator::new(seed);
            (0..20).map(|_| g.pattern().0).collect::<Vec<_>>()
        };
        assert_ne!(patterns(1), patterns(2));
    }

    #[test]
    fn every_pattern_parses_and_roundtrips() {
        let mut g = Generator::new(11);
        for _ in 0..300 {
            let (text, ast) = g.pattern();
            let reparsed = regex_frontend::parse(&text).expect("generator output parses");
            assert_eq!(reparsed.to_pattern(), ast.to_pattern(), "{text:?}");
        }
    }

    #[test]
    fn grammar_coverage_is_broad() {
        let mut g = Generator::new(3);
        let joined: String = (0..400).map(|_| g.pattern().0 + "\n").collect();
        for needle in ["(", "[^", "{", "|", "^", "$", "*", "+", "?", "\\x"] {
            assert!(joined.contains(needle), "no pattern used {needle:?}");
        }
    }

    #[test]
    fn witness_inputs_actually_match() {
        let mut g = Generator::new(23);
        let mut verified = 0;
        for _ in 0..300 {
            let (text, ast) = g.pattern();
            let oracle = regex_oracle::Oracle::from_ast(&ast);
            if let Some(witness) = g.witness(&ast) {
                assert!(oracle.is_match(&witness), "witness failed to match {text:?}: {witness:?}");
                verified += 1;
            }
        }
        // The budget bail-out must stay the exception, not the rule.
        assert!(verified > 250, "only {verified}/300 witnesses completed");
    }

    #[test]
    fn splits_are_in_range_and_deterministic() {
        let inputs: Vec<Vec<u8>> = vec![b"short".to_vec(), vec![b'x'; 30]];
        let mut a = Generator::new(9);
        let mut b = Generator::new(9);
        for _ in 0..50 {
            let sa = a.splits(&inputs);
            assert_eq!(sa, b.splits(&inputs));
            assert!(!sa.is_empty());
            assert!(sa.iter().all(|&p| (1..30).contains(&p)), "{sa:?}");
        }
        // Inputs too short to split yield no points at all.
        assert!(a.splits(&[vec![b'x']]).is_empty());
        assert!(a.splits(&[]).is_empty());
    }

    #[test]
    fn inputs_include_adversarial_shapes() {
        let mut g = Generator::new(5);
        let (_, ast) = g.pattern();
        let inputs = g.inputs(&ast);
        assert!(inputs[0].is_empty(), "empty input is always exercised");
        assert!(
            inputs.iter().any(|i| i.iter().any(|b| *b >= 0x80)) || {
                // High-byte noise can be empty for one pattern, but not for
                // many consecutive ones.
                (0..20).any(|_| {
                    let (_, ast) = g.pattern();
                    g.inputs(&ast).iter().any(|i| i.iter().any(|b| *b >= 0x80))
                })
            }
        );
    }
}
