//! Parallel batch-matching runtime.
//!
//! The paper's architecture wins by *parallel enumeration* — many cores
//! chewing through thread queues concurrently (§4). This crate is the
//! host-side analogue for serving many inputs: a fixed pool of workers,
//! each owning its own [`Machine`](cicero_sim::Machine) (so its
//! instruction caches stay warm across the inputs it serves, mirroring the
//! hardware rule that reprogramming flushes the caches while streaming new
//! data does not), pulling input chunks from a shared work queue and
//! merging per-worker [`ExecReport`]s deterministically — the merged
//! reports are byte-identical for every worker count.
//!
//! In front of the pool sits an LRU [`ProgramCache`] keyed by
//! `(pattern, CompilerOptions)`: repeated patterns — the common case for
//! serving traffic, where the same rule set scans every packet — skip the
//! whole multi-dialect pass pipeline and go straight to execution. This is
//! MLIR's own argument applied to serving: the compiler layers produce
//! reusable, cached artifacts that feed a parallel execution substrate,
//! rather than being re-run per request.
//!
//! # Example
//!
//! ```
//! use cicero_runtime::{Runtime, RuntimeOptions};
//! use cicero_sim::ArchConfig;
//!
//! let runtime = Runtime::new(RuntimeOptions { jobs: 2, ..RuntimeOptions::default() });
//! let chunks = vec![b"xxabyy".to_vec(), b"nothing".to_vec(), b"ab".to_vec()];
//! let batch = runtime.match_batch("ab|cd", &chunks, &ArchConfig::new_organization(8, 1))?;
//! assert_eq!(batch.matches(), 2);
//! assert!(!batch.cache_hit);
//! let again = runtime.match_batch("ab|cd", &chunks, &ArchConfig::new_organization(8, 1))?;
//! assert!(again.cache_hit, "second request skips the pass pipeline");
//! assert_eq!(again.reports, batch.reports, "reports are deterministic");
//! # Ok::<(), cicero_core::CompileError>(())
//! ```

mod budget;
mod cache;
mod handle;
mod stream;

use std::sync::Arc;
use std::time::{Duration, Instant};

pub use budget::{Budget, BudgetKind, GuardedBatch, MatchOutcome};
pub use cache::{CacheKey, CacheStats, ProgramCache, DEFAULT_SHARDS};
pub use cicero_hostexec::{
    EngineKind, HostAllOutcome, HostOutcome, HostProgram, HostRun, HostTiers,
};
pub use handle::{PinGuard, SetHandle};
pub use stream::{StreamError, StreamOptions, StreamReport};

use cicero_core::{Backend, CompileError, Compiler, CompilerOptions, PipelineReport};
use cicero_isa::Program;
use cicero_sim::{simulate_batch_parallel_stats, ArchConfig, ExecReport, WorkerStats};
use cicero_telemetry::{Telemetry, TraceSpan, Value};

/// Synthesize an [`ExecReport`] from a host-engine run so the host
/// backend flows through the same budget classification, batch
/// accounting, and serving plumbing as the simulator. The convention:
/// `cycles` and `instructions` both mean *input bytes examined* (one
/// byte per step is exactly what the engine does), the i-cache and stall
/// counters stay zero (no microarchitectural model), and
/// `hit_cycle_limit` means the byte budget tripped — so fuel on the host
/// backend is a byte budget.
pub(crate) fn host_exec_report(run: &HostRun) -> ExecReport {
    ExecReport {
        cycles: run.scanned,
        accepted: run.outcome.accepted,
        match_position: run.outcome.match_position,
        matched_id: run.outcome.matched_id,
        instructions: run.scanned,
        hit_cycle_limit: run.hit_byte_limit,
        ..ExecReport::default()
    }
}

/// Bounded memoization of host-engine lowerings, keyed by the program
/// itself. Lowering runs outside the lock (a racing duplicate is merely
/// wasted work); at capacity the map is flushed wholesale — entries are
/// cheap to rebuild and the working set of distinct programs is small.
struct HostCache {
    map: std::sync::Mutex<std::collections::HashMap<Program, Arc<HostProgram>>>,
    capacity: usize,
    tiers: HostTiers,
}

impl HostCache {
    fn new(capacity: usize, tiers: HostTiers) -> HostCache {
        HostCache {
            map: std::sync::Mutex::new(std::collections::HashMap::new()),
            capacity: capacity.max(1),
            tiers,
        }
    }

    fn get_or_lower(&self, program: &Program) -> Arc<HostProgram> {
        if let Some(hit) = self.map.lock().unwrap_or_else(|p| p.into_inner()).get(program) {
            return Arc::clone(hit);
        }
        let lowered = Arc::new(HostProgram::compile_with_tiers(program, self.tiers));
        let mut map = self.map.lock().unwrap_or_else(|p| p.into_inner());
        if map.len() >= self.capacity {
            map.clear();
        }
        map.entry(program.clone()).or_insert_with(|| Arc::clone(&lowered)).clone()
    }
}

/// Backfill per-pass compile timings under `span` as synthetic child
/// spans, laid out end-to-end from the span's start (the pass manager
/// ran them sequentially, so the cumulative layout is faithful).
pub(crate) fn record_pass_spans(span: &TraceSpan, report: &PipelineReport) {
    let mut offset = span.start_offset();
    for pass in &report.passes {
        span.context().record_complete(
            Some(span.id()),
            format!("pass:{}", pass.name),
            offset,
            pass.duration,
            vec![
                ("ops_before".to_owned(), Value::from(pass.ops_before)),
                ("ops_after".to_owned(), Value::from(pass.ops_after)),
            ],
        );
        offset += pass.duration;
    }
}

/// Construction-time knobs for a [`Runtime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Worker threads in the pool; `0` resolves to the host's available
    /// parallelism.
    pub jobs: usize,
    /// Maximum entries in the compiled-program cache.
    pub cache_capacity: usize,
    /// Lock stripes in the compiled-program cache; `0` resolves to the
    /// cache's built-in default ([`cache::DEFAULT_SHARDS`]). An autotuner
    /// knob: more stripes cut contention, fewer keep LRU order closer to
    /// global.
    pub cache_shards: usize,
    /// Host-backend engine-tier thresholds (see [`HostTiers`]).
    pub host_tiers: HostTiers,
    /// Compiler configuration used for every compilation (and part of
    /// every cache key).
    pub compiler: CompilerOptions,
}

impl Default for RuntimeOptions {
    fn default() -> RuntimeOptions {
        RuntimeOptions {
            jobs: 0,
            cache_capacity: 128,
            cache_shards: 0,
            host_tiers: HostTiers::default(),
            compiler: CompilerOptions::optimized(),
        }
    }
}

/// The result of one batch served by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One report per input, in input order — byte-identical to the
    /// sequential [`simulate_batch`](cicero_sim::simulate_batch) path for
    /// every worker count.
    pub reports: Vec<ExecReport>,
    /// All reports [`accumulate`](ExecReport::accumulate)d together.
    pub aggregate: ExecReport,
    /// Per-worker accounting, in worker order.
    pub workers: Vec<WorkerStats>,
    /// Worker threads the batch actually used.
    pub jobs: usize,
    /// Whether the program came out of the cache (no compilation).
    pub cache_hit: bool,
    /// Host wall-clock time spent executing the batch (excluding
    /// compilation).
    pub wall: Duration,
}

impl BatchReport {
    /// Number of inputs that matched.
    pub fn matches(&self) -> usize {
        self.reports.iter().filter(|r| r.accepted).count()
    }

    /// Total input bytes per host wall-clock second (0 when the batch
    /// finished faster than the clock resolution).
    pub fn throughput_bytes_per_sec(&self, total_bytes: usize) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            total_bytes as f64 / secs
        } else {
            0.0
        }
    }
}

/// A pre-run hook invoked with each input index on the worker thread
/// about to simulate it (guarded path only). Exists so tests can inject
/// deterministic faults — a panicking hook exercises the worker
/// panic-isolation path.
pub type RunHook = Arc<dyn Fn(usize) + Send + Sync>;

/// A batch-matching runtime: worker pool + compiled-program cache.
///
/// Cheap to share behind an [`Arc`]; all interior state (the cache) is
/// thread-safe, and batches from concurrent front-end threads interleave
/// freely.
pub struct Runtime {
    options: RuntimeOptions,
    jobs: usize,
    cache: ProgramCache,
    host: HostCache,
    telemetry: Option<Telemetry>,
    run_hook: Option<RunHook>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("options", &self.options)
            .field("jobs", &self.jobs)
            .field("cache", &self.cache)
            .field("telemetry", &self.telemetry)
            .field("run_hook", &self.run_hook.as_ref().map(|_| "..."))
            .finish()
    }
}

impl Default for Runtime {
    fn default() -> Runtime {
        Runtime::new(RuntimeOptions::default())
    }
}

impl Runtime {
    /// Build a runtime; `options.jobs == 0` resolves to the host's
    /// available parallelism.
    pub fn new(options: RuntimeOptions) -> Runtime {
        let jobs = if options.jobs == 0 {
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
        } else {
            options.jobs
        };
        let shards =
            if options.cache_shards == 0 { cache::DEFAULT_SHARDS } else { options.cache_shards };
        Runtime {
            jobs,
            cache: ProgramCache::with_shards(options.cache_capacity, shards),
            host: HostCache::new(options.cache_capacity, options.host_tiers),
            options,
            telemetry: None,
            run_hook: None,
        }
    }

    /// Attach a telemetry collector: every batch then records `runtime.*`
    /// counters (batch/input/cache totals, per-worker distributions) and
    /// folds each run's [`ExecReport`] into the existing `sim.*` metrics.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Runtime {
        self.telemetry = Some(telemetry);
        self
    }

    /// Install a pre-run hook for the guarded batch path (see [`RunHook`]).
    #[must_use]
    pub fn with_run_hook(mut self, hook: RunHook) -> Runtime {
        self.run_hook = Some(hook);
        self
    }

    /// The resolved worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The active options (with `jobs` as originally requested).
    pub fn options(&self) -> &RuntimeOptions {
        &self.options
    }

    /// The compiled-program cache (for statistics and administration).
    pub fn cache(&self) -> &ProgramCache {
        &self.cache
    }

    /// The backend requests run on unless they say otherwise (from
    /// [`RuntimeOptions::compiler`]).
    pub fn backend(&self) -> Backend {
        self.options.compiler.backend
    }

    /// The host-engine lowering of `program`, memoized per runtime. Use
    /// this to inspect engine selection or to run host-only entry points
    /// like [`HostProgram::run_all`] directly.
    pub fn host_program(&self, program: &Program) -> Arc<HostProgram> {
        self.host.get_or_lower(program)
    }

    /// Compile `pattern` through the cache.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; failures are not cached.
    pub fn compile(&self, pattern: &str) -> Result<Arc<Program>, CompileError> {
        Ok(self.compile_tracked(pattern)?.0)
    }

    fn compile_tracked(&self, pattern: &str) -> Result<(Arc<Program>, bool), CompileError> {
        self.compile_traced(pattern, None)
    }

    /// Compile `pattern` through the cache, attaching a `compile` child
    /// span (with per-pass children on a cache miss) under `trace`.
    ///
    /// # Errors
    ///
    /// See [`CompileError`]; failures are not cached.
    pub fn compile_traced(
        &self,
        pattern: &str,
        trace: Option<&TraceSpan>,
    ) -> Result<(Arc<Program>, bool), CompileError> {
        let span = trace.map(|parent| parent.child("compile"));
        let mut report: Option<PipelineReport> = None;
        // Compilation is backend-agnostic, so the backend is normalized
        // out of the key: sim and host requests share one cache entry.
        let key = CacheKey::pattern(pattern, self.options.compiler.with_backend(Backend::Sim));
        let result: Result<(Arc<Program>, bool), CompileError> =
            self.cache.get_or_insert_with(key, || {
                let compiled = Compiler::with_options(self.options.compiler).compile(pattern)?;
                if span.is_some() {
                    report = Some(compiled.pass_report().clone());
                }
                Ok(compiled.into_program())
            });
        self.note_lookup(&result);
        if let Some(span) = &span {
            if let Ok((_, hit)) = &result {
                span.annotate("cache_hit", *hit);
            }
            if let Some(report) = &report {
                span.annotate("passes", report.passes.len());
                record_pass_spans(span, report);
            }
        }
        result
    }

    /// Compile a multi-matching set through the cache (see
    /// [`Compiler::compile_set`]); the set's match identifiers index the
    /// `patterns` slice in order.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_set`].
    pub fn compile_set<S: AsRef<str>>(&self, patterns: &[S]) -> Result<Arc<Program>, CompileError> {
        Ok(self.compile_set_traced(patterns, None)?.0)
    }

    /// Compile a multi-matching set through the cache, attaching a
    /// `compile` child span (with per-pass children covering every
    /// pattern's pipeline on a cache miss) under `trace`.
    ///
    /// # Errors
    ///
    /// See [`Compiler::compile_set`].
    pub fn compile_set_traced<S: AsRef<str>>(
        &self,
        patterns: &[S],
        trace: Option<&TraceSpan>,
    ) -> Result<(Arc<Program>, bool), CompileError> {
        let span = trace.map(|parent| {
            let span = parent.child("compile");
            span.annotate("patterns", patterns.len());
            span
        });
        let mut report: Option<PipelineReport> = None;
        let key = CacheKey::set(patterns, self.options.compiler.with_backend(Backend::Sim));
        let result: Result<(Arc<Program>, bool), CompileError> =
            self.cache.get_or_insert_with(key, || {
                let set = Compiler::with_options(self.options.compiler).compile_set(patterns)?;
                if span.is_some() {
                    report = Some(set.pass_report().clone());
                }
                Ok(set.program().clone())
            });
        self.note_lookup(&result);
        if let Some(span) = &span {
            if let Ok((_, hit)) = &result {
                span.annotate("cache_hit", *hit);
            }
            if let Some(report) = &report {
                span.annotate("passes", report.passes.len());
                record_pass_spans(span, report);
            }
        }
        result
    }

    fn note_lookup<E>(&self, result: &Result<(Arc<Program>, bool), E>) {
        if let (Some(telemetry), Ok((_, hit))) = (&self.telemetry, result) {
            let name = if *hit { "runtime.cache_hits" } else { "runtime.cache_misses" };
            telemetry.counter_add(name, 1);
        }
    }

    /// Compile `pattern` (through the cache) and run it over every input
    /// on the worker pool.
    ///
    /// # Errors
    ///
    /// Compilation errors only; execution itself cannot fail.
    pub fn match_batch(
        &self,
        pattern: &str,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
    ) -> Result<BatchReport, CompileError> {
        let (program, cache_hit) = self.compile_tracked(pattern)?;
        Ok(self.run_batch_inner(&program, inputs, config, cache_hit))
    }

    /// Run an already-compiled program over every input on the worker
    /// pool (`cache_hit` is reported as `false`).
    pub fn run_batch(
        &self,
        program: &Program,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
    ) -> BatchReport {
        self.run_batch_inner(program, inputs, config, false)
    }

    fn run_batch_inner(
        &self,
        program: &Program,
        inputs: &[Vec<u8>],
        config: &ArchConfig,
        cache_hit: bool,
    ) -> BatchReport {
        let span = self.telemetry.as_ref().map(|t| {
            let span = t.span("runtime.batch");
            span.annotate("inputs", inputs.len());
            span.annotate("jobs", self.jobs.min(inputs.len().max(1)));
            span.annotate("cache_hit", cache_hit);
            span
        });
        let start = Instant::now();
        let (reports, workers) = simulate_batch_parallel_stats(program, inputs, config, self.jobs);
        let wall = start.elapsed();
        let mut aggregate = ExecReport::default();
        for report in &reports {
            aggregate.accumulate(report);
        }
        let batch =
            BatchReport { jobs: workers.len(), aggregate, workers, reports, cache_hit, wall };
        if let Some(telemetry) = &self.telemetry {
            self.record_batch(telemetry, &batch);
            if let Some(span) = span {
                span.annotate("matches", batch.matches());
                span.annotate("cycles", batch.aggregate.cycles);
            }
        }
        batch
    }

    /// Fold one batch into the collector: `runtime.*` counters and
    /// per-worker distributions, plus every run's report merged into the
    /// `sim.*` metrics (the same shape `simulate_with_telemetry` emits, so
    /// dashboards aggregate sequential and parallel traffic uniformly).
    fn record_batch(&self, telemetry: &Telemetry, batch: &BatchReport) {
        telemetry.counter_add("runtime.batches", 1);
        telemetry.counter_add("runtime.inputs", batch.reports.len() as u64);
        telemetry.counter_add("runtime.matches", batch.matches() as u64);
        telemetry.gauge_set("runtime.jobs", self.jobs as f64);
        for worker in &batch.workers {
            telemetry.counter_add("runtime.worker_runs", worker.inputs as u64);
            telemetry.observe("runtime.worker_inputs", worker.inputs as f64);
            telemetry.observe("runtime.worker_cycles", worker.cycles as f64);
        }
        for report in &batch.reports {
            report.record_into(telemetry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_sim::simulate_batch;

    fn chunks() -> Vec<Vec<u8>> {
        let mut inputs: Vec<Vec<u8>> = (0..7).map(|i| vec![b'x'; 30 + i]).collect();
        inputs[2] = b"xxxabcdxxx".to_vec();
        inputs[5] = b"bcda".to_vec();
        inputs
    }

    const PATTERN: &str = "(abcd|bcda|cdab|dabc)";

    fn runtime(jobs: usize) -> Runtime {
        Runtime::new(RuntimeOptions { jobs, ..RuntimeOptions::default() })
    }

    #[test]
    fn matches_equal_the_sequential_path_for_every_job_count() {
        let config = ArchConfig::new_organization(8, 1);
        let program = cicero_core::compile(PATTERN).unwrap().into_program();
        let sequential = simulate_batch(&program, &chunks(), &config);
        for jobs in 1..=5 {
            let batch = runtime(jobs).match_batch(PATTERN, &chunks(), &config).unwrap();
            assert_eq!(batch.reports, sequential, "jobs={jobs}");
            assert_eq!(batch.matches(), 2);
        }
    }

    #[test]
    fn cache_serves_repeated_patterns() {
        let runtime = runtime(2);
        let config = ArchConfig::old_organization(1);
        let first = runtime.match_batch(PATTERN, &chunks(), &config).unwrap();
        assert!(!first.cache_hit);
        let second = runtime.match_batch(PATTERN, &chunks(), &config).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.reports, second.reports);
        let stats = runtime.cache().stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn compile_set_is_cached_too() {
        let runtime = runtime(1);
        let patterns = ["GET /", "POST /"];
        let a = runtime.compile_set(&patterns).unwrap();
        let b = runtime.compile_set(&patterns).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(runtime.cache().stats().hits, 1);
    }

    #[test]
    fn compile_errors_surface_and_are_not_cached() {
        let runtime = runtime(1);
        assert!(runtime.compile("(").is_err());
        assert_eq!(runtime.cache().stats().entries, 0);
    }

    #[test]
    fn empty_sets_error_through_the_cache_without_polluting_it() {
        let runtime = runtime(1);
        let err = runtime.compile_set::<&str>(&[]).unwrap_err();
        assert!(matches!(err, CompileError::EmptySet));
        assert_eq!(runtime.cache().stats().entries, 0);
        // A duplicate-bearing set still compiles and caches normally.
        let set = runtime.compile_set(&["ab", "ab"]).unwrap();
        let all = cicero_isa::run_all(&set, b"xab");
        assert_eq!(all.matched_ids, vec![0, 1]);
        assert_eq!(runtime.cache().stats().entries, 1);
    }

    #[test]
    fn worker_accounting_covers_every_input() {
        let batch = runtime(3)
            .match_batch(PATTERN, &chunks(), &ArchConfig::new_organization(8, 1))
            .unwrap();
        assert_eq!(batch.workers.iter().map(|w| w.inputs).sum::<usize>(), chunks().len());
        assert_eq!(batch.workers.iter().map(|w| w.cycles).sum::<u64>(), batch.aggregate.cycles);
        assert!(batch.jobs >= 1 && batch.jobs <= 3);
    }

    #[test]
    fn telemetry_merges_runtime_and_sim_metrics() {
        let telemetry = Telemetry::new();
        let runtime = runtime(2).with_telemetry(telemetry.clone());
        let config = ArchConfig::old_organization(1);
        runtime.match_batch(PATTERN, &chunks(), &config).unwrap();
        runtime.match_batch(PATTERN, &chunks(), &config).unwrap();
        assert_eq!(telemetry.counter("runtime.batches"), 2);
        assert_eq!(telemetry.counter("runtime.inputs"), 14);
        assert_eq!(telemetry.counter("runtime.cache_hits"), 1);
        assert_eq!(telemetry.counter("runtime.cache_misses"), 1);
        assert_eq!(telemetry.counter("runtime.worker_runs"), 14);
        // Every individual run is folded into the existing sim.* metrics.
        assert_eq!(telemetry.counter("sim.runs"), 14);
        assert_eq!(telemetry.histogram("sim.cycles").unwrap().count, 14);
        assert!(telemetry.histogram("runtime.worker_cycles").unwrap().count >= 2);
        let spans = telemetry.spans();
        assert_eq!(spans.iter().filter(|s| s.name == "runtime.batch").count(), 2);
    }

    #[test]
    fn zero_jobs_resolves_to_host_parallelism() {
        let runtime = Runtime::new(RuntimeOptions::default());
        assert!(runtime.jobs() >= 1);
    }
}
