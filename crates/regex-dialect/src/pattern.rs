//! `regex` dialect IR → pattern text (the inverse of [`crate::ast_to_ir`]).
//!
//! Used by tests to state transformation results in plain regex syntax
//! (e.g. asserting that factorization turns `this|that|those` into
//! `th(is|at|ose)`) and by tooling to show users the effect of each pass.

use mlir_lite::{Attribute, Operation};

use crate::ops::{attrs, names, piece_parts, quantifier_bounds};

/// Render a `regex.root` tree back to pattern syntax.
///
/// Character classes print as the smaller of the positive form `[…]` and
/// the negated form `[^…]`; a full bitmap prints as `.`.
///
/// # Panics
///
/// Panics on IR that does not verify against the dialect — run
/// [`mlir_lite::Context::verify`] first when handling untrusted IR.
pub fn ir_to_pattern(root: &Operation) -> String {
    assert!(root.is(names::ROOT), "expected regex.root, got {}", root.name());
    let mut out = String::new();
    if root.attr(attrs::HAS_PREFIX).and_then(Attribute::as_bool) == Some(false) {
        out.push('^');
    }
    write_alternatives(&root.only_region().ops, &mut out);
    if root.attr(attrs::HAS_SUFFIX).and_then(Attribute::as_bool) == Some(false) {
        out.push('$');
    }
    out
}

fn write_alternatives(alternatives: &[Operation], out: &mut String) {
    for (i, concat) in alternatives.iter().enumerate() {
        if i > 0 {
            out.push('|');
        }
        for piece in &concat.only_region().ops {
            write_piece(piece, out);
        }
    }
}

fn write_piece(piece: &Operation, out: &mut String) {
    let (atom, quant) = piece_parts(piece);
    match atom.name().as_str() {
        names::MATCH_CHAR => {
            let c = atom.attr(attrs::TARGET_CHAR).and_then(Attribute::as_char).expect("verified");
            write_escaped(c, out);
        }
        names::MATCH_ANY_CHAR => out.push('.'),
        names::DOLLAR => out.push('$'),
        names::GROUP => {
            let bits = atom
                .attr(attrs::TARGET_CHARS)
                .and_then(Attribute::as_bool_array)
                .expect("verified");
            write_class(bits, out);
        }
        names::SUB_REGEX => {
            out.push('(');
            write_alternatives(&atom.only_region().ops, out);
            out.push(')');
        }
        other => panic!("unexpected atom {other}"),
    }
    if let Some(quant) = quant {
        let (min, max) = quantifier_bounds(quant);
        match (min, max) {
            (0, None) => out.push('*'),
            (1, None) => out.push('+'),
            (0, Some(1)) => out.push('?'),
            (m, None) => out.push_str(&format!("{{{m},}}")),
            (m, Some(n)) if m == n => out.push_str(&format!("{{{m}}}")),
            (m, Some(n)) => out.push_str(&format!("{{{m},{n}}}")),
        }
    }
}

fn write_class(bits: &[bool], out: &mut String) {
    let count = bits.iter().filter(|b| **b).count();
    if count == 256 {
        out.push('.');
        return;
    }
    if count == 1 {
        let c = bits.iter().position(|b| *b).expect("count == 1") as u8;
        write_escaped(c, out);
        return;
    }
    let negate = count > 128;
    out.push('[');
    if negate {
        out.push('^');
    }
    for (i, bit) in bits.iter().enumerate() {
        if *bit != negate {
            let c = i as u8;
            match c {
                b']' | b'\\' | b'^' | b'-' => {
                    out.push('\\');
                    out.push(c as char);
                }
                c if c.is_ascii_graphic() || c == b' ' => out.push(c as char),
                c => out.push_str(&format!("\\x{c:02x}")),
            }
        }
    }
    out.push(']');
}

fn write_escaped(c: u8, out: &mut String) {
    if b".*+?()[]{}|^$\\".contains(&c) {
        out.push('\\');
        out.push(c as char);
    } else if c.is_ascii_graphic() || c == b' ' {
        out.push(c as char);
    } else {
        out.push_str(&format!("\\x{c:02x}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast_to_ir;

    fn roundtrip(pattern: &str) -> String {
        ir_to_pattern(&ast_to_ir(&regex_frontend::parse(pattern).unwrap()))
    }

    #[test]
    fn simple_patterns_roundtrip() {
        for p in ["abc", "a|b", "(ab)|c{3,6}d+", "^x$", "a.c*", "(a(b|c)){2,}"] {
            assert_eq!(roundtrip(p), p);
        }
    }

    #[test]
    fn class_prints_positive_or_negated_by_size() {
        assert_eq!(roundtrip("[ab]"), "[ab]");
        assert_eq!(roundtrip("[^ab]"), "[^ab]");
        // Ranges are expanded to their members.
        assert_eq!(roundtrip("[a-c]"), "[abc]");
    }

    #[test]
    fn escapes_survive() {
        assert_eq!(roundtrip(r"\.\*"), r"\.\*");
        assert_eq!(roundtrip(r"a\x00b"), r"a\x00b");
    }

    #[test]
    fn printed_form_reparses_equivalently() {
        for p in ["(ab)|c{3,6}d+", "[^a-f]{2}x+", "th(is|at|ose)", "^a(b|)c$"] {
            let once = roundtrip(p);
            let twice = roundtrip(&once);
            assert_eq!(once, twice, "printing must be idempotent for {p}");
        }
    }
}
