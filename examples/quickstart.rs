//! Quickstart: compile a regex with the multi-dialect compiler and run it
//! on the proposed 16-core Cicero engine.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cicero::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile. The pipeline parses the pattern, builds high-level
    //    `regex` dialect IR, runs the algebraic + shortest-match
    //    transformations, lowers to the `cicero` dialect, applies Jump
    //    Simplification, and emits Cicero ISA code.
    let pattern = "(GET|POST) /api/[a-z]+";
    let compiled = Compiler::new().compile(pattern)?;
    println!("pattern   : {pattern}");
    println!("code size : {} instructions", compiled.code_size());
    println!("D_offset  : {} (code-locality proxy; lower is better)", compiled.d_offset());
    println!("compiled in {:?}\n", compiled.stats().total());

    // 2. Inspect the generated assembly.
    println!("assembly:\n{}", compiled.program().to_asm());

    // 3. Execute on the cycle-level simulator: NEW 16x1 CORES is the
    //    paper's best configuration.
    let config = ArchConfig::new_organization(16, 1);
    let requests = [
        &b"GET /api/users HTTP/1.1"[..],
        b"POST /api/login HTTP/1.1",
        b"DELETE /api/users/7 HTTP/1.1",
    ];
    for request in requests {
        let report = simulate(compiled.program(), request, &config);
        println!(
            "{:<32} -> {:<9} in {:>5} cycles ({:.2} us at {} MHz)",
            String::from_utf8_lossy(request),
            if report.accepted { "MATCH" } else { "no match" },
            report.cycles,
            report.time_us(config.clock_mhz()),
            config.clock_mhz(),
        );
    }

    // 4. Cross-check with the reference Pike-VM oracle.
    let oracle = Oracle::new(pattern)?;
    for request in requests {
        let report = simulate(compiled.program(), request, &config);
        assert_eq!(report.accepted, oracle.is_match(request));
    }
    println!("\nverdicts agree with the reference Pike VM");
    Ok(())
}
