//! Models of the repo's three load-bearing concurrency protocols, in
//! the shape the [`crate::Explorer`] can exhaust.
//!
//! Each model mirrors one real protocol step-for-step at the
//! granularity of its atomic operations (one lock-protected region,
//! channel op, or atomic RMW per [`crate::Model::step`]):
//!
//! * [`AdmissionModel`] — the server's bounded admission queue
//!   (`cicero-server`): acceptor increments the `queued` gauge, then
//!   `try_send`s; on a full queue it decrements and rejects with a 503.
//!   Workers `recv`, decrement the gauge, and serve. The
//!   `gauge_after_send` flag re-creates the tempting-but-wrong ordering
//!   (send first, count after) whose gauge goes negative when a worker
//!   dequeues between the two steps.
//! * [`DrainModel`] — the readiness-loop drain protocol: a poller owns
//!   parked keep-alive connections, dispatches readable ones to a
//!   bounded ready queue, and on drain must *sweep* — dispatch parked
//!   connections that already have bytes waiting, closing only the truly
//!   idle ones — before dropping the dispatch channel. The
//!   `close_parked_on_drain` flag re-creates the shortcut of closing
//!   every parked connection at drain, which silently drops requests
//!   that had already arrived.
//! * [`RespawnModel`] — the guarded set-scan from `cicero-runtime`'s
//!   budget module: workers pull input indices off a shared atomic
//!   counter, run them on a per-worker machine, and on a panic respawn
//!   the machine and retry the same input once before recording a
//!   fault. The `lose_input_on_panic` flag re-creates the pre-guard
//!   behaviour where a panic abandoned the in-flight input entirely.
//! * [`SwapModel`] — the ruleset registry's hot-swap/drain protocol
//!   (`cicero-server::registry` over `cicero_runtime::SetHandle`):
//!   scanners pin the current version *and* read it in one
//!   lock-protected step, swaps install a new version then retire the
//!   old one, and a reaper releases a retired version only once its pin
//!   count has drained to zero. The `free_old_while_pinned` flag
//!   re-creates the tempting shortcut of releasing the old version at
//!   retire time, which is a use-after-release for any scan still
//!   pinned to it.

use std::collections::VecDeque;

use crate::{Model, Step};

// ---------------------------------------------------------------------------
// Admission: bounded queue + gauge + drain.
// ---------------------------------------------------------------------------

/// See module docs. Thread 0 is the acceptor; threads `1..=workers` are
/// queue workers.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionModel {
    /// Connections the acceptor admits or rejects, in order.
    pub connections: usize,
    /// Bounded queue depth (`sync_channel` capacity).
    pub queue_depth: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Re-create the historical bug: count into the gauge *after* a
    /// successful send instead of before.
    pub gauge_after_send: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AcceptorPc {
    /// Correct path: bump the gauge before attempting the send.
    GaugeUp,
    /// Attempt `try_send` of the current connection.
    Send,
    /// Send failed (queue full): undo the gauge bump, reject.
    GaugeDownReject,
    /// Buggy path: send succeeded, *now* bump the gauge.
    LateGaugeUp,
    /// All connections handled: drop the sender so workers exit.
    DropTx,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueWorkerPc {
    /// Blocked on `recv` until the queue is non-empty or the sender is
    /// dropped.
    Recv,
    /// Decrement the gauge for the dequeued connection.
    GaugeDown,
    /// Serve the dequeued connection.
    Serve,
}

/// Shared state of the admission protocol.
#[derive(Debug)]
pub struct AdmissionState {
    queue: VecDeque<usize>,
    /// The `queued` gauge; `i64` so the underflow bug is visible rather
    /// than a wrap.
    gauge: i64,
    tx_dropped: bool,
    next_conn: usize,
    acceptor_pc: AcceptorPc,
    workers: Vec<(QueueWorkerPc, Option<usize>)>,
    served: Vec<usize>,
    rejected: Vec<usize>,
}

impl Model for AdmissionModel {
    type State = AdmissionState;

    fn name(&self) -> &'static str {
        "admission"
    }

    fn threads(&self) -> usize {
        1 + self.workers
    }

    fn init(&self) -> AdmissionState {
        AdmissionState {
            queue: VecDeque::new(),
            gauge: 0,
            tx_dropped: false,
            next_conn: 0,
            acceptor_pc: if self.connections == 0 {
                AcceptorPc::DropTx
            } else if self.gauge_after_send {
                AcceptorPc::Send
            } else {
                AcceptorPc::GaugeUp
            },
            workers: vec![(QueueWorkerPc::Recv, None); self.workers],
            served: Vec::new(),
            rejected: Vec::new(),
        }
    }

    fn enabled(&self, state: &AdmissionState, tid: usize) -> bool {
        if tid == 0 {
            return !state.tx_dropped;
        }
        let (pc, _) = state.workers[tid - 1];
        match pc {
            QueueWorkerPc::Recv => !state.queue.is_empty() || state.tx_dropped,
            _ => true,
        }
    }

    fn step(&self, state: &mut AdmissionState, tid: usize) -> Step {
        if tid == 0 {
            let first_pc =
                if self.gauge_after_send { AcceptorPc::Send } else { AcceptorPc::GaugeUp };
            match state.acceptor_pc {
                AcceptorPc::GaugeUp => {
                    state.gauge += 1;
                    state.acceptor_pc = AcceptorPc::Send;
                }
                AcceptorPc::Send => {
                    if state.queue.len() < self.queue_depth {
                        state.queue.push_back(state.next_conn);
                        state.next_conn += 1;
                        state.acceptor_pc = if self.gauge_after_send {
                            AcceptorPc::LateGaugeUp
                        } else if state.next_conn == self.connections {
                            AcceptorPc::DropTx
                        } else {
                            first_pc
                        };
                    } else if self.gauge_after_send {
                        // Buggy variant never touched the gauge, so a
                        // rejection is a single step.
                        state.rejected.push(state.next_conn);
                        state.next_conn += 1;
                        if state.next_conn == self.connections {
                            state.acceptor_pc = AcceptorPc::DropTx;
                        }
                    } else {
                        state.acceptor_pc = AcceptorPc::GaugeDownReject;
                    }
                }
                AcceptorPc::GaugeDownReject => {
                    state.gauge -= 1;
                    state.rejected.push(state.next_conn);
                    state.next_conn += 1;
                    state.acceptor_pc = if state.next_conn == self.connections {
                        AcceptorPc::DropTx
                    } else {
                        first_pc
                    };
                }
                AcceptorPc::LateGaugeUp => {
                    state.gauge += 1;
                    state.acceptor_pc = if state.next_conn == self.connections {
                        AcceptorPc::DropTx
                    } else {
                        first_pc
                    };
                }
                AcceptorPc::DropTx => {
                    state.tx_dropped = true;
                    return Step::Done;
                }
            }
            return Step::Progress;
        }

        let widx = tid - 1;
        match state.workers[widx].0 {
            QueueWorkerPc::Recv => match state.queue.pop_front() {
                Some(conn) => {
                    state.workers[widx] = (QueueWorkerPc::GaugeDown, Some(conn));
                }
                None => {
                    debug_assert!(state.tx_dropped);
                    return Step::Done;
                }
            },
            QueueWorkerPc::GaugeDown => {
                state.gauge -= 1;
                state.workers[widx].0 = QueueWorkerPc::Serve;
            }
            QueueWorkerPc::Serve => {
                let conn = state.workers[widx].1.take().expect("serving without a connection");
                state.served.push(conn);
                state.workers[widx].0 = QueueWorkerPc::Recv;
            }
        }
        Step::Progress
    }

    fn invariant(&self, state: &AdmissionState) -> Result<(), String> {
        if state.gauge < 0 {
            return Err(format!("queued gauge underflowed to {}", state.gauge));
        }
        if state.queue.len() > self.queue_depth {
            return Err(format!(
                "queue holds {} entries, depth is {}",
                state.queue.len(),
                self.queue_depth
            ));
        }
        Ok(())
    }

    fn check(&self, state: &AdmissionState) -> Result<(), String> {
        let mut seen = vec![0u32; self.connections];
        for &conn in state.served.iter().chain(&state.rejected) {
            seen[conn] += 1;
        }
        if let Some(conn) = seen.iter().position(|&n| n != 1) {
            return Err(format!(
                "connection {conn} finished {} times (served {:?}, rejected {:?})",
                seen[conn], state.served, state.rejected
            ));
        }
        if !state.queue.is_empty() {
            return Err(format!("{} connections stranded in the queue", state.queue.len()));
        }
        if state.gauge != 0 {
            return Err(format!("queued gauge settled at {} != 0", state.gauge));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Drain: readiness loop shutdown vs in-flight requests.
// ---------------------------------------------------------------------------

/// See module docs. Thread 0 triggers the drain, thread 1 is the
/// poller, threads `2..2 + workers` serve dispatched connections.
#[derive(Debug, Clone)]
pub struct DrainModel {
    /// Parked keep-alive connections; `true` means a request has already
    /// arrived on it (readable) when the model starts.
    pub parked: Vec<bool>,
    /// Bounded ready-queue depth between poller and workers.
    pub queue_depth: usize,
    /// Worker threads.
    pub workers: usize,
    /// Re-create the shortcut bug: on drain, close every parked
    /// connection instead of sweeping readable ones into the queue.
    pub close_parked_on_drain: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PollerPc {
    /// Normal operation: dispatch readable parked connections.
    Poll,
    /// Draining: walk the remaining parked list once.
    Sweep,
    /// Sweep finished: drop the dispatch channel.
    DropTx,
}

/// Shared state of the drain protocol.
#[derive(Debug)]
pub struct DrainState {
    /// Still-parked connections: `(conn id, readable)`.
    parked: Vec<(usize, bool)>,
    ready: VecDeque<usize>,
    tx_dropped: bool,
    draining: bool,
    poller_pc: PollerPc,
    workers: Vec<Option<usize>>,
    served: Vec<usize>,
    closed_idle: Vec<usize>,
    dropped_ready: Vec<usize>,
}

impl DrainModel {
    fn first_readable(state: &DrainState) -> Option<usize> {
        state.parked.iter().position(|&(_, readable)| readable)
    }
}

impl Model for DrainModel {
    type State = DrainState;

    fn name(&self) -> &'static str {
        "drain"
    }

    fn threads(&self) -> usize {
        2 + self.workers
    }

    fn init(&self) -> DrainState {
        DrainState {
            parked: self.parked.iter().copied().enumerate().collect(),
            ready: VecDeque::new(),
            tx_dropped: false,
            draining: false,
            poller_pc: PollerPc::Poll,
            workers: vec![None; self.workers],
            served: Vec::new(),
            closed_idle: Vec::new(),
            dropped_ready: Vec::new(),
        }
    }

    fn enabled(&self, state: &DrainState, tid: usize) -> bool {
        match tid {
            // Drain trigger: a shutdown request can land at any moment.
            0 => true,
            1 => match state.poller_pc {
                // Polling blocks when nothing is readable (the real loop
                // sleeps) and backpressures when the queue is full; the
                // drain flag always wakes it.
                PollerPc::Poll => {
                    state.draining
                        || (Self::first_readable(state).is_some()
                            && state.ready.len() < self.queue_depth)
                }
                PollerPc::Sweep => match state.parked.first() {
                    // Dispatching a readable connection is a blocking
                    // send: wait for queue room. Closing an idle one
                    // never blocks.
                    Some(&(_, readable)) => {
                        self.close_parked_on_drain
                            || !readable
                            || state.ready.len() < self.queue_depth
                    }
                    None => true,
                },
                PollerPc::DropTx => true,
            },
            _ => {
                let widx = tid - 2;
                state.workers[widx].is_some() || !state.ready.is_empty() || state.tx_dropped
            }
        }
    }

    fn step(&self, state: &mut DrainState, tid: usize) -> Step {
        match tid {
            0 => {
                state.draining = true;
                return Step::Done;
            }
            1 => match state.poller_pc {
                PollerPc::Poll => {
                    if state.draining {
                        state.poller_pc = PollerPc::Sweep;
                    } else {
                        let slot = Self::first_readable(state)
                            .expect("poll stepped with nothing readable");
                        let (conn, _) = state.parked.remove(slot);
                        state.ready.push_back(conn);
                    }
                }
                PollerPc::Sweep => match state.parked.first().copied() {
                    Some((conn, readable)) => {
                        state.parked.remove(0);
                        if self.close_parked_on_drain {
                            if readable {
                                state.dropped_ready.push(conn);
                            } else {
                                state.closed_idle.push(conn);
                            }
                        } else if readable {
                            state.ready.push_back(conn);
                        } else {
                            state.closed_idle.push(conn);
                        }
                    }
                    None => state.poller_pc = PollerPc::DropTx,
                },
                PollerPc::DropTx => {
                    state.tx_dropped = true;
                    return Step::Done;
                }
            },
            _ => {
                let widx = tid - 2;
                if let Some(conn) = state.workers[widx].take() {
                    state.served.push(conn);
                } else {
                    match state.ready.pop_front() {
                        Some(conn) => state.workers[widx] = Some(conn),
                        None => {
                            debug_assert!(state.tx_dropped);
                            return Step::Done;
                        }
                    }
                }
            }
        }
        Step::Progress
    }

    fn invariant(&self, state: &DrainState) -> Result<(), String> {
        if state.ready.len() > self.queue_depth {
            return Err(format!(
                "ready queue holds {} entries, depth is {}",
                state.ready.len(),
                self.queue_depth
            ));
        }
        Ok(())
    }

    fn check(&self, state: &DrainState) -> Result<(), String> {
        if !state.dropped_ready.is_empty() {
            return Err(format!(
                "connections {:?} had requests waiting but were closed unserved",
                state.dropped_ready
            ));
        }
        for (conn, readable) in self.parked.iter().copied().enumerate() {
            if readable && !state.served.contains(&conn) {
                return Err(format!(
                    "readable connection {conn} never served (served {:?})",
                    state.served
                ));
            }
            if !readable && !state.closed_idle.contains(&conn) {
                return Err(format!(
                    "idle connection {conn} never closed (closed {:?})",
                    state.closed_idle
                ));
            }
        }
        if !state.ready.is_empty() {
            return Err(format!("{} dispatches stranded in the ready queue", state.ready.len()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Respawn: panic → machine respawn → bounded retry during a set scan.
// ---------------------------------------------------------------------------

/// Attempt cap before an input is recorded as a fault instead of
/// retried — mirrors `MAX_ATTEMPTS` in the runtime's guarded batch.
pub const RESPAWN_MAX_ATTEMPTS: usize = 2;

/// See module docs. All threads are scan workers.
#[derive(Debug, Clone)]
pub struct RespawnModel {
    /// Per input: how many attempts panic before one succeeds.
    /// `0` = clean, `1` = panics once then matches,
    /// `>= RESPAWN_MAX_ATTEMPTS` = faults.
    pub panics: Vec<usize>,
    /// Scan worker threads.
    pub workers: usize,
    /// Re-create the unguarded behaviour: a panic abandons the in-flight
    /// input instead of respawning and retrying.
    pub lose_input_on_panic: bool,
}

/// Final disposition of one scanned input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOutcome {
    /// The machine ran it to completion.
    Completed,
    /// It panicked [`RESPAWN_MAX_ATTEMPTS`] times and was written off.
    Fault,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanPc {
    /// `fetch_add` the shared index.
    Fetch,
    /// Lazily (re)spawn the per-worker machine.
    Ensure,
    /// Run the current input on the machine.
    Run,
}

#[derive(Debug, Clone, Copy)]
struct ScanWorker {
    pc: ScanPc,
    machine_alive: bool,
    current: Option<(usize, usize)>, // (input index, attempts so far)
}

/// Shared state of the respawn protocol.
#[derive(Debug)]
pub struct RespawnState {
    next: usize,
    outcomes: Vec<Option<ScanOutcome>>,
    restarts: usize,
    workers: Vec<ScanWorker>,
    double_write: Option<usize>,
}

impl RespawnState {
    fn record(&mut self, input: usize, outcome: ScanOutcome) {
        if self.outcomes[input].is_some() {
            self.double_write = Some(input);
        }
        self.outcomes[input] = Some(outcome);
    }
}

impl Model for RespawnModel {
    type State = RespawnState;

    fn name(&self) -> &'static str {
        "respawn"
    }

    fn threads(&self) -> usize {
        self.workers
    }

    fn init(&self) -> RespawnState {
        RespawnState {
            next: 0,
            outcomes: vec![None; self.panics.len()],
            restarts: 0,
            workers: vec![
                ScanWorker { pc: ScanPc::Fetch, machine_alive: true, current: None };
                self.workers
            ],
            double_write: None,
        }
    }

    fn enabled(&self, _state: &RespawnState, _tid: usize) -> bool {
        true
    }

    fn step(&self, state: &mut RespawnState, tid: usize) -> Step {
        let mut worker = state.workers[tid];
        let step = match worker.pc {
            ScanPc::Fetch => {
                let index = state.next;
                state.next += 1;
                if index >= self.panics.len() {
                    Step::Done
                } else {
                    worker.current = Some((index, 0));
                    worker.pc = ScanPc::Ensure;
                    Step::Progress
                }
            }
            ScanPc::Ensure => {
                worker.machine_alive = true;
                worker.pc = ScanPc::Run;
                Step::Progress
            }
            ScanPc::Run => {
                let (input, attempts) = worker.current.expect("run step without an input");
                debug_assert!(worker.machine_alive, "ran on a dead machine");
                if attempts < self.panics[input] {
                    // This attempt panics: the machine is poisoned and
                    // torn down, the restart counter bumps.
                    state.restarts += 1;
                    worker.machine_alive = false;
                    let attempts = attempts + 1;
                    if self.lose_input_on_panic {
                        // Buggy: walk away from the input entirely.
                        worker.current = None;
                        worker.pc = ScanPc::Fetch;
                    } else if attempts >= RESPAWN_MAX_ATTEMPTS {
                        state.record(input, ScanOutcome::Fault);
                        worker.current = None;
                        worker.pc = ScanPc::Fetch;
                    } else {
                        worker.current = Some((input, attempts));
                        worker.pc = ScanPc::Ensure;
                    }
                } else {
                    state.record(input, ScanOutcome::Completed);
                    worker.current = None;
                    worker.pc = ScanPc::Fetch;
                }
                Step::Progress
            }
        };
        state.workers[tid] = worker;
        step
    }

    fn invariant(&self, state: &RespawnState) -> Result<(), String> {
        if let Some(input) = state.double_write {
            return Err(format!("input {input} recorded twice"));
        }
        let max_restarts: usize = self.panics.iter().map(|&p| p.min(RESPAWN_MAX_ATTEMPTS)).sum();
        if state.restarts > max_restarts {
            return Err(format!(
                "{} machine restarts, at most {max_restarts} possible",
                state.restarts
            ));
        }
        Ok(())
    }

    fn check(&self, state: &RespawnState) -> Result<(), String> {
        for (input, &panics) in self.panics.iter().enumerate() {
            let expected = if panics >= RESPAWN_MAX_ATTEMPTS {
                ScanOutcome::Fault
            } else {
                ScanOutcome::Completed
            };
            match state.outcomes[input] {
                None => return Err(format!("input {input} was never scanned to an outcome")),
                Some(actual) if actual != expected => {
                    return Err(format!(
                        "input {input} finished {actual:?}, expected {expected:?}"
                    ));
                }
                Some(_) => {}
            }
        }
        let expected_restarts: usize =
            self.panics.iter().map(|&p| p.min(RESPAWN_MAX_ATTEMPTS)).sum();
        if state.restarts != expected_restarts {
            return Err(format!(
                "{} machine restarts recorded, expected {expected_restarts}",
                state.restarts
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Swap: ruleset hot reload vs in-flight scans vs drain.
// ---------------------------------------------------------------------------

/// See module docs. Threads `0..scanners` are scanners, thread
/// `scanners` is the swapper, thread `scanners + 1` is the reaper that
/// releases drained versions.
#[derive(Debug, Clone, Copy)]
pub struct SwapModel {
    /// Concurrent scan requests, each pinning whatever version is
    /// current when it is admitted.
    pub scanners: usize,
    /// Hot swaps the swapper performs (each installs a fresh version and
    /// retires the previous one).
    pub swaps: usize,
    /// Re-create the use-after-release bug: release the old version at
    /// retire time instead of waiting for its pins to drain.
    pub free_old_while_pinned: bool,
}

/// One compiled ruleset version's lifecycle counters.
#[derive(Debug, Clone, Copy)]
struct VersionState {
    pins: usize,
    retired: bool,
    freed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScannerPc {
    /// Atomically read the current version and pin it (the registry does
    /// both under the entries lock, which is exactly why a concurrent
    /// swap cannot slip between lookup and pin).
    Pin,
    /// Run the scan against the pinned program.
    Scan,
    /// Drop the pin guard.
    Unpin,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SwapperPc {
    /// Compile + persist + install the new version as current.
    Install,
    /// Retire the previous version (new pins can no longer land on it).
    Retire,
}

/// Shared state of the swap/drain protocol.
#[derive(Debug)]
pub struct SwapState {
    versions: Vec<VersionState>,
    current: usize,
    scanners: Vec<(ScannerPc, Option<usize>)>,
    scanners_done: usize,
    swapper_pc: SwapperPc,
    swapper_old: usize,
    swaps_done: usize,
    swapper_done: bool,
}

impl SwapModel {
    fn drained_unfreed(state: &SwapState) -> Option<usize> {
        state.versions.iter().position(|v| v.retired && !v.freed && v.pins == 0)
    }

    fn all_retired_freed(state: &SwapState) -> bool {
        state.versions.iter().all(|v| !v.retired || v.freed)
    }
}

impl Model for SwapModel {
    type State = SwapState;

    fn name(&self) -> &'static str {
        "swap"
    }

    fn threads(&self) -> usize {
        self.scanners + 2
    }

    fn init(&self) -> SwapState {
        SwapState {
            versions: vec![VersionState { pins: 0, retired: false, freed: false }],
            current: 0,
            scanners: vec![(ScannerPc::Pin, None); self.scanners],
            scanners_done: 0,
            swapper_pc: SwapperPc::Install,
            swapper_old: 0,
            swaps_done: 0,
            swapper_done: false,
        }
    }

    fn enabled(&self, state: &SwapState, tid: usize) -> bool {
        if tid < self.scanners {
            return true;
        }
        if tid == self.scanners {
            return !state.swapper_done;
        }
        // The reaper blocks until a retired version has drained; its
        // final step runs once everything else is finished and released.
        Self::drained_unfreed(state).is_some()
            || (state.swapper_done
                && state.scanners_done == self.scanners
                && Self::all_retired_freed(state))
    }

    fn step(&self, state: &mut SwapState, tid: usize) -> Step {
        if tid < self.scanners {
            let (pc, pinned) = state.scanners[tid];
            match pc {
                ScannerPc::Pin => {
                    let version = state.current;
                    state.versions[version].pins += 1;
                    state.scanners[tid] = (ScannerPc::Scan, Some(version));
                }
                ScannerPc::Scan => {
                    state.scanners[tid].0 = ScannerPc::Unpin;
                }
                ScannerPc::Unpin => {
                    let version = pinned.expect("unpin without a pinned version");
                    state.versions[version].pins -= 1;
                    state.scanners[tid] = (ScannerPc::Pin, None);
                    state.scanners_done += 1;
                    return Step::Done;
                }
            }
            return Step::Progress;
        }

        if tid == self.scanners {
            match state.swapper_pc {
                SwapperPc::Install => {
                    state.swapper_old = state.current;
                    state.versions.push(VersionState { pins: 0, retired: false, freed: false });
                    state.current = state.versions.len() - 1;
                    state.swapper_pc = SwapperPc::Retire;
                }
                SwapperPc::Retire => {
                    let old = state.swapper_old;
                    state.versions[old].retired = true;
                    if self.free_old_while_pinned {
                        // Buggy: release right here, pins or not.
                        state.versions[old].freed = true;
                    }
                    state.swaps_done += 1;
                    if state.swaps_done == self.swaps {
                        state.swapper_done = true;
                        return Step::Done;
                    }
                    state.swapper_pc = SwapperPc::Install;
                }
            }
            return Step::Progress;
        }

        match Self::drained_unfreed(state) {
            Some(version) => {
                state.versions[version].freed = true;
                Step::Progress
            }
            None => Step::Done,
        }
    }

    fn invariant(&self, state: &SwapState) -> Result<(), String> {
        for (version, v) in state.versions.iter().enumerate() {
            if v.freed && !v.retired {
                return Err(format!("version {version} freed without being retired"));
            }
            if v.freed && v.pins > 0 {
                return Err(format!(
                    "version {version} freed with {} live pins (use-after-release)",
                    v.pins
                ));
            }
        }
        for (tid, &(_, pinned)) in state.scanners.iter().enumerate() {
            if let Some(version) = pinned {
                if state.versions[version].freed {
                    return Err(format!(
                        "scanner {tid} holds a pin on freed version {version} (use-after-release)"
                    ));
                }
            }
        }
        if state.versions[state.current].freed {
            return Err(format!("current version {} is freed", state.current));
        }
        Ok(())
    }

    fn check(&self, state: &SwapState) -> Result<(), String> {
        for (version, v) in state.versions.iter().enumerate() {
            if v.pins != 0 {
                return Err(format!("version {version} settled with {} pins", v.pins));
            }
            if version == state.current {
                if v.retired || v.freed {
                    return Err(format!("current version {version} retired or freed"));
                }
            } else if !(v.retired && v.freed) {
                return Err(format!(
                    "superseded version {version} never released (retired {}, freed {})",
                    v.retired, v.freed
                ));
            }
        }
        if state.versions.len() != self.swaps + 1 {
            return Err(format!(
                "{} versions exist after {} swaps",
                state.versions.len(),
                self.swaps
            ));
        }
        Ok(())
    }
}
