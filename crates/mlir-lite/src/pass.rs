//! Passes and the pass manager.

use std::fmt;
use std::time::{Duration, Instant};

use crate::dialect::Context;
use crate::op::Operation;

/// A compiler pass transforming an operation tree in place.
pub trait Pass {
    /// Stable diagnostic name, e.g. `regex-factorize-alternations`.
    fn name(&self) -> &'static str;

    /// Run the pass on `root`.
    ///
    /// # Errors
    ///
    /// Returns a [`PassError`] if the pass cannot complete (malformed
    /// input IR, resource limits, internal invariant violations).
    fn run(&self, root: &mut Operation, ctx: &Context) -> Result<(), PassError>;
}

/// A pass failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Name of the failing pass (filled in by the pass manager if empty).
    pub pass: String,
    /// Human-readable description.
    pub message: String,
}

impl PassError {
    /// Construct an error with the pass name left for the manager to fill.
    pub fn new(message: impl Into<String>) -> PassError {
        PassError { pass: String::new(), message: message.into() }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pass.is_empty() {
            write!(f, "pass failed: {}", self.message)
        } else {
            write!(f, "pass `{}` failed: {}", self.pass, self.message)
        }
    }
}

impl std::error::Error for PassError {}

/// Timing and structural data for one executed pass.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// Pass name.
    pub name: &'static str,
    /// Wall-clock duration of the pass.
    pub duration: Duration,
    /// Op count before the pass ran.
    pub ops_before: usize,
    /// Op count after the pass ran.
    pub ops_after: usize,
}

/// Report for a whole pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// One entry per executed pass, in order.
    pub passes: Vec<PassReport>,
}

impl PipelineReport {
    /// Total wall-clock time across all passes.
    pub fn total_duration(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<40} {:>12} {:>8} {:>8}", "pass", "time", "ops in", "ops out")?;
        for p in &self.passes {
            writeln!(
                f,
                "{:<40} {:>9.3?} {:>8} {:>8}",
                p.name, p.duration, p.ops_before, p.ops_after
            )?;
        }
        write!(f, "{:<40} {:>9.3?}", "total", self.total_duration())
    }
}

/// An ordered pipeline of passes with optional inter-pass verification.
///
/// Mirrors `mlir::PassManager`: passes run in order, and when
/// [`PassManager::verify_each`] is enabled the IR is verified against the
/// context's registered dialects after every pass, turning pass bugs into
/// immediate, attributed failures.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>())
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}

impl PassManager {
    /// An empty pipeline with inter-pass verification enabled.
    pub fn new() -> PassManager {
        PassManager { passes: Vec::new(), verify_each: true }
    }

    /// Append a pass.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Enable or disable verification after each pass.
    pub fn verify_each(&mut self, enabled: bool) -> &mut Self {
        self.verify_each = enabled;
        self
    }

    /// Number of passes in the pipeline.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Run the pipeline on `root`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`PassError`] (with the pass name attached) or
    /// converts the first post-pass verification failure into one.
    pub fn run(&self, root: &mut Operation, ctx: &Context) -> Result<PipelineReport, PassError> {
        let mut report = PipelineReport::default();
        for pass in &self.passes {
            let ops_before = root.subtree_size();
            let start = Instant::now();
            pass.run(root, ctx).map_err(|mut e| {
                if e.pass.is_empty() {
                    e.pass = pass.name().to_owned();
                }
                e
            })?;
            let duration = start.elapsed();
            if self.verify_each {
                ctx.verify(root).map_err(|e| PassError {
                    pass: pass.name().to_owned(),
                    message: format!("IR invalid after pass: {e}"),
                })?;
            }
            report.passes.push(PassReport {
                name: pass.name(),
                duration,
                ops_before,
                ops_after: root.subtree_size(),
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{Dialect, OpDefinition};
    use crate::op::Region;

    struct AppendLeaf;
    impl Pass for AppendLeaf {
        fn name(&self) -> &'static str {
            "append-leaf"
        }
        fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
            root.only_region_mut().ops.push(Operation::new("t.leaf"));
            Ok(())
        }
    }

    struct Corrupt;
    impl Pass for Corrupt {
        fn name(&self) -> &'static str {
            "corrupt"
        }
        fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
            root.only_region_mut().ops.push(Operation::new("t.undefined"));
            Ok(())
        }
    }

    struct Fail;
    impl Pass for Fail {
        fn name(&self) -> &'static str {
            "fail"
        }
        fn run(&self, _root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
            Err(PassError::new("deliberate"))
        }
    }

    fn ctx() -> Context {
        let mut d = Dialect::new("t");
        d.register_op(OpDefinition::simple("module", 1));
        d.register_op(OpDefinition::simple("leaf", 0));
        let mut c = Context::new();
        c.register_dialect(d);
        c
    }

    fn module() -> Operation {
        Operation::new("t.module").with_region(Region::new())
    }

    #[test]
    fn pipeline_runs_in_order_and_reports() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(AppendLeaf)).add_pass(Box::new(AppendLeaf));
        let mut m = module();
        let report = pm.run(&mut m, &ctx()).unwrap();
        assert_eq!(m.only_region().len(), 2);
        assert_eq!(report.passes.len(), 2);
        assert_eq!(report.passes[0].ops_before, 1);
        assert_eq!(report.passes[0].ops_after, 2);
        assert_eq!(report.passes[1].ops_after, 3);
    }

    #[test]
    fn failure_is_attributed_to_pass() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(Fail));
        let err = pm.run(&mut module(), &ctx()).unwrap_err();
        assert_eq!(err.pass, "fail");
    }

    #[test]
    fn verify_each_catches_corruption() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(Corrupt));
        let err = pm.run(&mut module(), &ctx()).unwrap_err();
        assert_eq!(err.pass, "corrupt");
        assert!(err.message.contains("IR invalid after pass"), "{err}");
    }

    #[test]
    fn verification_can_be_disabled() {
        let mut pm = PassManager::new();
        pm.verify_each(false);
        pm.add_pass(Box::new(Corrupt));
        pm.run(&mut module(), &ctx()).unwrap();
    }

    #[test]
    fn report_displays() {
        let mut pm = PassManager::new();
        pm.add_pass(Box::new(AppendLeaf));
        let report = pm.run(&mut module(), &ctx()).unwrap();
        let text = report.to_string();
        assert!(text.contains("append-leaf"), "{text}");
        assert!(text.contains("total"), "{text}");
    }
}
