//! **Figure 15** — energy-efficiency improvement of every selected
//! configuration, normalized against OLD 1x9 CORES (new compiler).
//!
//! Reproduction targets: NEW 8x1 wins the single-RE suites on energy
//! thanks to its resource efficiency; NEW 16x1 wins the alternate suites
//! (paper: 1.44x Protomata4, 1.27x Brill4 vs the old organization).

use cicero_bench::{banner, f2, measure, selected_configs, suites, CompiledSuite, Scale, Table};
use cicero_sim::ArchConfig;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 15", "energy efficiency normalized to OLD 1x9 CORES", scale);
    let compiled: Vec<CompiledSuite> = suites(scale).iter().map(CompiledSuite::build).collect();
    let baseline_config = ArchConfig::old_organization(9);

    let mut headers = vec!["configuration".to_owned()];
    headers.extend(compiled.iter().map(|s| s.name.to_owned()));
    let mut table = Table::new(headers);
    let baselines: Vec<f64> = compiled
        .iter()
        .map(|s| measure(&s.new_opt, &s.chunks, &baseline_config).avg_energy_wus)
        .collect();
    let mut best_simple = (String::new(), 0.0f64);
    let mut best_alt = (String::new(), 0.0f64);
    for config in selected_configs() {
        let mut cells = vec![config.name()];
        let mut simple_score = 0.0;
        let mut alt_score = 0.0;
        for (i, suite) in compiled.iter().enumerate() {
            let m = measure(&suite.new_opt, &suite.chunks, &config);
            let improvement = baselines[i] / m.avg_energy_wus;
            if i < 2 {
                simple_score += improvement;
            } else {
                alt_score += improvement;
            }
            cells.push(format!("{}x", f2(improvement)));
        }
        if simple_score > best_simple.1 {
            best_simple = (config.name(), simple_score);
        }
        if alt_score > best_alt.1 {
            best_alt = (config.name(), alt_score);
        }
        table.row(cells);
    }
    table.print();
    println!("\n  best on single-RE suites: {} (paper: NEW 8x1)", best_simple.0);
    println!("  best on alternate suites:  {} (paper: NEW 16x1)", best_alt.0);
}
