//! Literal-prefilter extraction: memchr-style skipping of non-candidate
//! bytes.
//!
//! Unanchored programs spend almost all their time in a *steady scan
//! state* — the configuration reached after a byte that starts no match
//! (for the canonical scan loop, the self-looping `.*` state). From that
//! state, any byte that (a) steps the configuration back to itself and
//! (b) fires no acceptance is provably skippable: the engine's state and
//! output are identical whether the byte is stepped or skipped. The
//! prefilter precomputes that skip set; at run time, whenever the live
//! configuration equals the steady state, the scan degrades to "find the
//! next *stop* byte" — a memchr.
//!
//! When the stop set has at most three members (the typical literal-led
//! pattern: `th(is|at)` stops only on `t`), the search is a hand-rolled
//! SWAR memchr over 8-byte words; larger stop sets fall back to a
//! 256-entry table scan. Both are exact: the prefilter never skips a
//! position the engine would have treated differently, so it is safe for
//! `run`, `run_all`, and the resumable stream matcher alike (skips never
//! cross a chunk boundary — state is re-checked per chunk).

use crate::engine::{BitEngine, Mask};

/// Minimum skippable bytes (out of 256) for the prefilter to pay for its
/// per-byte state comparison.
const MIN_SKIP_BYTES: usize = 128;

#[derive(Debug, Clone)]
pub(crate) struct Prefilter<M> {
    /// The steady scan configuration the skip set was derived for.
    pub state: M,
    /// `stop[b]`: the scan must re-enter the engine at `b`.
    stop: [bool; 256],
    kind: SkipKind,
}

#[derive(Debug, Clone)]
enum SkipKind {
    /// Stop set of 1–3 bytes: SWAR word-at-a-time search.
    Memchr(Vec<u8>),
    /// Larger stop sets: table-driven scalar scan.
    Table,
}

impl<M: Mask> Prefilter<M> {
    /// First index `>= from` holding a stop byte, or `hay.len()`.
    pub(crate) fn find_stop(&self, hay: &[u8], from: usize) -> usize {
        match &self.kind {
            SkipKind::Memchr(needles) => from + swar_find(needles, &hay[from..]),
            SkipKind::Table => {
                from + hay[from..]
                    .iter()
                    .position(|&b| self.stop[usize::from(b)])
                    .unwrap_or(hay.len() - from)
            }
        }
    }

    /// The stop bytes (the extracted literal candidates), for
    /// introspection and tests.
    pub(crate) fn stop_bytes(&self) -> Vec<u8> {
        (0u16..256).map(|b| b as u8).filter(|&b| self.stop[usize::from(b)]).collect()
    }
}

/// SWAR multi-needle memchr: first index of any needle in `hay`, or
/// `hay.len()`. Words are read little-endian so the zero-byte locator's
/// `trailing_zeros / 8` is the in-word byte offset.
fn swar_find(needles: &[u8], hay: &[u8]) -> usize {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let splats: Vec<u64> = needles.iter().map(|&n| LO * u64::from(n)).collect();
    let mut chunks = hay.chunks_exact(8);
    let mut offset = 0usize;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let mut found = 0u64;
        for &splat in &splats {
            let x = word ^ splat;
            found |= x.wrapping_sub(LO) & !x & HI;
        }
        if found != 0 {
            return offset + (found.trailing_zeros() / 8) as usize;
        }
        offset += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if needles.contains(&b) {
            return offset + i;
        }
    }
    hay.len()
}

/// Derive a prefilter for `engine`, if a steady state with a large
/// enough skip set exists.
pub(crate) fn derive<M: Mask>(engine: &BitEngine<M>) -> Option<Prefilter<M>> {
    let start = engine.start();
    // Candidate steady states: the start configuration itself plus every
    // configuration one non-accepting byte away from it (for the
    // canonical scan loop that is the self-looping `.*` state).
    let mut candidates: Vec<M> = vec![start];
    for class in 0..engine.classes.count {
        if !engine.accepts_on(start, class) {
            let next = engine.step(start, class);
            if !next.is_zero() && !candidates.contains(&next) {
                candidates.push(next);
            }
        }
    }

    let mut best: Option<(M, Vec<usize>, usize)> = None;
    for state in candidates {
        let mut skip_classes: Vec<usize> = Vec::new();
        let mut skip_bytes = 0usize;
        for class in 0..engine.classes.count {
            if engine.step(state, class) == state && !engine.accepts_on(state, class) {
                skip_classes.push(class);
                skip_bytes += (0u16..256)
                    .filter(|&b| usize::from(engine.classes.of[usize::from(b as u8)]) == class)
                    .count();
            }
        }
        if skip_bytes >= MIN_SKIP_BYTES
            && best.as_ref().is_none_or(|(_, _, bytes)| skip_bytes > *bytes)
        {
            best = Some((state, skip_classes, skip_bytes));
        }
    }

    let (state, skip_classes, _) = best?;
    let mut stop = [true; 256];
    for b in 0u16..256 {
        let class = usize::from(engine.classes.of[usize::from(b as u8)]);
        if skip_classes.contains(&class) {
            stop[usize::from(b as u8)] = false;
        }
    }
    let stop_bytes: Vec<u8> =
        (0u16..256).map(|b| b as u8).filter(|&b| stop[usize::from(b)]).collect();
    let kind = if (1..=3).contains(&stop_bytes.len()) {
        SkipKind::Memchr(stop_bytes)
    } else {
        SkipKind::Table
    };
    Some(Prefilter { state, stop, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swar_finds_first_needle_across_word_boundaries() {
        let hay: Vec<u8> = (0..50).map(|i| if i == 37 { b't' } else { b'x' }).collect();
        assert_eq!(swar_find(b"t", &hay), 37);
        assert_eq!(swar_find(b"q", &hay), hay.len());
        assert_eq!(swar_find(b"qt", &hay), 37);
        assert_eq!(swar_find(b"t", b""), 0);
        // Needle in the sub-word tail.
        let mut tail = vec![b'x'; 10];
        tail.push(b't');
        assert_eq!(swar_find(b"t", &tail), 10);
    }

    #[test]
    fn swar_handles_high_bytes() {
        let mut hay = vec![0x7fu8; 20];
        hay[13] = 0xff;
        assert_eq!(swar_find(&[0xff], &hay), 13);
        assert_eq!(swar_find(&[0x00], &hay), hay.len());
    }
}
