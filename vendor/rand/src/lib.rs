//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements exactly the API surface the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`], xoshiro256++ seeded through
//! SplitMix64) and the [`RngExt`] extension trait with `random_range` /
//! `random_bool`. Distribution quality matches the upstream generator
//! family; statistical-bias subtleties (e.g. modulo reduction in bounded
//! sampling) are deliberately ignored — every consumer in this workspace
//! only needs a deterministic, well-mixed stream.

/// Core trait: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy {
    /// Widen to `i128` (all supported types fit losslessly).
    fn to_i128(self) -> i128;
    /// Narrow from `i128` (caller guarantees the value is in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn from_i128(v: i128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value using `word` as the entropy source.
    fn sample(self, word: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, word: u64) -> T {
        let lo = self.start.to_i128();
        let hi = self.end.to_i128();
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_i128(lo + (i128::from(word) % (hi - lo)))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, word: u64) -> T {
        let lo = self.start().to_i128();
        let hi = self.end().to_i128();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::from_i128(lo + (i128::from(word) % (hi - lo + 1)))
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// A uniform value in `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias matching upstream's primary extension-trait name.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u32..1000), b.random_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(b'a'..=b'f');
            assert!((b'a'..=b'f').contains(&w));
            let neg = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&neg));
        }
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        use super::RngCore;
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
