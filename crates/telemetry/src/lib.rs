//! Unified telemetry substrate for the Cicero workspace.
//!
//! The paper's central claims are quantitative: per-pass compile-time
//! breakdowns (Fig. 9), code-size and `D_offset` deltas per
//! transformation (Figs. 8/10), and cycle / i-cache behaviour of the
//! parallel-enumeration microarchitecture (Table 5). This crate is the
//! single metrics substrate every layer reports through — mirroring how
//! MLIR treats pass instrumentation, timing, and statistics as one
//! cross-cutting infrastructure rather than ad-hoc per-tool counters.
//!
//! Three pieces, pure `std`:
//!
//! * **Spans** ([`Telemetry::span`]): nested wall-clock regions with
//!   arbitrary key/value annotations. The compiler opens one span per
//!   pipeline stage and one child span per pass.
//! * **Metrics** ([`Telemetry::counter_add`], [`Telemetry::gauge_set`],
//!   [`Telemetry::observe`]): a registry of counters, gauges, and
//!   fixed-bucket histograms. The simulator folds every run's
//!   [`ExecReport`-shaped counters](https://docs.rs) into it.
//! * **Sinks** ([`Telemetry::render_summary`],
//!   [`Telemetry::render_jsonl`], [`Telemetry::write_jsonl_path`]): a
//!   human-readable summary and a JSON-lines exporter (hand-rolled
//!   serializer — no external dependencies) writable to a file or
//!   stdout.
//!
//! A [`Telemetry`] value is a cheap clonable handle (`Arc<Mutex<..>>`
//! inside), so one collector can be threaded through compiler, simulator,
//! CLI, and benchmark drivers simultaneously.
//!
//! # Metric namespaces
//!
//! Series names are dot-separated, with the first segment identifying the
//! emitting layer:
//!
//! * `compile.*` — compiler pass pipeline (spans per stage/pass);
//! * `sim.*` — one fold per simulated run: cycles, instructions, icache
//!   hit rate, stalls, verdicts;
//! * `runtime.*` — batch serving: batches, inputs, cache hits/misses,
//!   per-worker distributions, `worker_restarts` (panic recoveries) and
//!   `budget_exceeded` on the guarded path;
//! * `stream.*` — streaming scan sessions: `sessions`, `chunks`, `bytes`,
//!   `suspends` (chunk-boundary pauses), `peak_buffered` (sliding-buffer
//!   high-water mark), `budget_exceeded`;
//! * `server.*` — the HTTP serving tier: `requests` (total and
//!   per-`{endpoint}.{status}`), `rejected` (admission-control 503s),
//!   `latency_ms` histogram, `queue_depth`/`in_flight` gauges,
//!   `cache_hit_ratio`, `drains`/`drain_ms`;
//! * `difftest.*` — differential fuzzing: patterns, cases, divergences,
//!   shrink steps.
//!
//! # Example
//!
//! ```
//! use cicero_telemetry::Telemetry;
//!
//! let telemetry = Telemetry::new();
//! {
//!     let span = telemetry.span("compile");
//!     span.annotate("pattern", "ab|cd");
//!     {
//!         let pass = telemetry.span("pass:canonicalize");
//!         pass.annotate("ops_before", 10u64);
//!         pass.annotate("ops_after", 8u64);
//!     } // pass span closes here
//! }
//! telemetry.counter_add("sim.runs", 1);
//! telemetry.observe("sim.cycles", 1234.0);
//! let jsonl = telemetry.render_jsonl();
//! assert!(jsonl.lines().count() >= 3);
//! assert!(jsonl.contains("\"type\":\"span\""));
//! ```

pub mod json;
pub mod metrics;
pub mod recorder;
pub(crate) mod shard;
pub mod sink;
pub mod span;
pub mod trace;

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

pub use json::{escape_json, JsonObject, Value};
pub use metrics::{Exemplar, HistogramSnapshot, Metric, MetricsRegistry};
pub use recorder::{FlightRecorder, FlightRecorderOptions};
pub use span::{Span, SpanRecord};
pub use trace::{render_chrome_trace, RequestTrace, TraceContext, TraceSpan, TraceSpanRecord};

pub(crate) struct Inner {
    pub(crate) epoch: Instant,
    pub(crate) spans: Vec<SpanRecord>,
    /// Indices of currently open spans, innermost last.
    pub(crate) open: Vec<usize>,
    /// Instantaneous named records (benchmark rows, one-off facts).
    pub(crate) events: Vec<(String, Vec<(String, Value)>)>,
}

/// A clonable handle to one telemetry collector.
#[derive(Clone)]
pub struct Telemetry {
    /// Spans and events: low-rate, mutex-backed.
    inner: Arc<Mutex<Inner>>,
    /// Counters / gauges / histograms: per-thread shards, lock-free on
    /// the hot path, merged on read (see [`mod@shard`]).
    metrics: Arc<shard::ShardedMetrics>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (spans, events) = {
            let inner = self.lock();
            (inner.spans.len(), inner.events.len())
        };
        f.debug_struct("Telemetry")
            .field("spans", &spans)
            .field("metrics", &self.merged_metrics().len())
            .field("events", &events)
            .finish()
    }
}

impl Telemetry {
    /// A fresh, empty collector; span timestamps are relative to this
    /// call.
    pub fn new() -> Telemetry {
        Telemetry {
            inner: Arc::new(Mutex::new(Inner {
                epoch: Instant::now(),
                spans: Vec::new(),
                open: Vec::new(),
                events: Vec::new(),
            })),
            metrics: shard::ShardedMetrics::new(),
        }
    }

    pub(crate) fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    // -- spans -------------------------------------------------------------

    /// Open a nested span; it records its duration when dropped (or via
    /// [`Span::close`]).
    pub fn span(&self, name: impl Into<String>) -> Span {
        span::enter(self.clone(), name.into())
    }

    /// Record an instantaneous named event with attributes.
    pub fn event(&self, name: impl Into<String>, attrs: Vec<(String, Value)>) {
        self.lock().events.push((name.into(), attrs));
    }

    /// Snapshot of all finished spans, in open order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.iter().filter(|s| s.closed).cloned().collect()
    }

    // -- metrics -----------------------------------------------------------
    //
    // All writes land in the calling thread's shard: after the first
    // touch of a name, `counter_add` / `observe` are a thread-local map
    // lookup plus relaxed atomics — no global mutex on the hot path.

    /// Add `delta` to a (auto-registered) counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    /// Set a (auto-registered) gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    /// Record one observation into a histogram with default power-of-ten
    /// buckets (see [`metrics::DEFAULT_BUCKETS`]).
    pub fn observe(&self, name: &str, value: f64) {
        self.metrics.observe(name, value, metrics::DEFAULT_BUCKETS);
    }

    /// Record one observation into a histogram with explicit fixed bucket
    /// upper bounds (used on first registration; later calls reuse the
    /// registered bounds).
    pub fn observe_with(&self, name: &str, value: f64, bounds: &[f64]) {
        self.metrics.observe(name, value, bounds);
    }

    /// Record one observation and pin `label` (conventionally a request
    /// id) as the latest exemplar of the bucket it lands in, linking
    /// e.g. a p99 latency bucket back to the request that populated it.
    pub fn observe_with_exemplar(&self, name: &str, value: f64, bounds: &[f64], label: &str) {
        self.metrics.observe_with_exemplar(name, value, bounds, label);
    }

    /// Snapshot of one counter (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.merged_metrics().counter(name)
    }

    /// Snapshot of one gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.merged_metrics().gauge(name)
    }

    /// Snapshot of one histogram.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.merged_metrics().histogram(name)
    }

    /// Deterministically merge every thread's shard into one registry
    /// (counters sum; gauges and exemplars resolve last-write-wins by a
    /// global stamp; histogram buckets sum).
    pub fn merged_metrics(&self) -> MetricsRegistry {
        self.metrics.merged()
    }

    // -- sinks -------------------------------------------------------------

    /// Human-readable report: span tree then metrics table.
    pub fn render_summary(&self) -> String {
        sink::render_summary(self)
    }

    /// JSON-lines export: one self-describing record per line.
    pub fn render_jsonl(&self) -> String {
        sink::render_jsonl(self)
    }

    /// Prometheus text exposition of the merged metrics.
    pub fn render_prometheus(&self) -> String {
        sink::render_prometheus(&self.merged_metrics())
    }

    /// Write the JSON-lines export to any writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl<W: std::io::Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(self.render_jsonl().as_bytes())
    }

    /// Write the JSON-lines export to a file path, or to stdout when the
    /// path is `-`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write_jsonl_path(&self, path: &str) -> std::io::Result<()> {
        if path == "-" {
            self.write_jsonl(&mut std::io::stdout().lock())
        } else {
            std::fs::write(path, self.render_jsonl())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_annotate() {
        let t = Telemetry::new();
        {
            let outer = t.span("outer");
            outer.annotate("k", "v");
            {
                let inner = t.span("inner");
                inner.annotate("n", 3u64);
            }
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(outer.duration >= inner.duration);
        assert_eq!(outer.attrs[0].0, "k");
    }

    #[test]
    fn explicit_close_is_idempotent_with_drop() {
        let t = Telemetry::new();
        let span = t.span("s");
        span.close();
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let t = Telemetry::new();
        t.counter_add("c", 2);
        t.counter_add("c", 3);
        t.gauge_set("g", 1.0);
        t.gauge_set("g", 4.5);
        assert_eq!(t.counter("c"), 5);
        assert_eq!(t.gauge("g"), Some(4.5));
        assert_eq!(t.counter("absent"), 0);
    }

    #[test]
    fn histograms_bucket_correctly() {
        let t = Telemetry::new();
        for v in [0.5, 5.0, 50.0, 50.0, 5e9] {
            t.observe_with("h", v, &[1.0, 10.0, 100.0]);
        }
        let h = t.histogram("h").unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(h.bucket_counts, vec![1, 1, 2, 1]); // ≤1, ≤10, ≤100, +inf
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 5e9);
    }

    #[test]
    fn clones_share_state() {
        let a = Telemetry::new();
        let b = a.clone();
        b.counter_add("shared", 7);
        assert_eq!(a.counter("shared"), 7);
    }

    #[test]
    fn jsonl_contains_every_record_kind() {
        let t = Telemetry::new();
        {
            let s = t.span("compile");
            s.annotate("pattern", "a|b");
        }
        t.counter_add("c", 1);
        t.gauge_set("g", 2.0);
        t.observe("h", 3.0);
        t.event("row", vec![("suite".to_owned(), Value::from("PROTOMATA"))]);
        let jsonl = t.render_jsonl();
        for kind in [
            "\"type\":\"span\"",
            "\"type\":\"counter\"",
            "\"type\":\"gauge\"",
            "\"type\":\"histogram\"",
            "\"type\":\"event\"",
        ] {
            assert!(jsonl.contains(kind), "missing {kind} in {jsonl}");
        }
        // Every line must be a standalone JSON object.
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn summary_mentions_spans_and_metrics() {
        let t = Telemetry::new();
        {
            let _s = t.span("stage");
        }
        t.counter_add("runs", 3);
        let summary = t.render_summary();
        assert!(summary.contains("stage"), "{summary}");
        assert!(summary.contains("runs"), "{summary}");
    }
}
