//! **Autotuner payoff** — tuned-vs-default rows for the Protomata and
//! Brill packs plus one registry-style ruleset, exported to
//! `BENCH_tune.json`.
//!
//! For each suite the bench scores the built-in default configuration
//! under the tuner's sim cost model (cycles + icache-miss penalty), then
//! runs `cicero_tune::tune` over the full compiler × architecture space
//! and scores the winner. Two properties are *asserted*, not just
//! measured:
//!
//! * **no regressions** — the tuned config's cost is never above the
//!   default's on any suite (the searcher evaluates the default as
//!   candidate zero and only replaces it on strictly lower cost, so a
//!   regression here means the search engine itself is broken);
//! * **determinism** — a second run with the same seed and budget picks
//!   the identical winning config.
//!
//! Search budget follows `CICERO_BENCH_SCALE`: `quick` 10 evaluations,
//! default 24, `full` 96. Output path via `CICERO_BENCH_TUNE` (empty to
//! disable, default `BENCH_tune.json`).

use std::fmt::Write as _;

use cicero_bench::{banner, Scale, Table};
use cicero_tune::{tune, Budget, CostReport, SearchSpace, SimCostModel, TuneConfig, Workload};

/// Same seed the CI smoke job and EXPERIMENTS.md runs use.
const SEED: u64 = 42;

fn eval_budget(scale: Scale) -> usize {
    match scale.patterns {
        8 => 10,   // quick
        200 => 96, // full
        _ => 24,
    }
}

/// The registry-style suite: the shared member plus version-specific
/// patterns that `benches/registry.rs` hot-swaps under load.
fn registry_workload() -> Workload {
    let patterns: Vec<String> =
        vec!["ab|cd".to_owned(), "v0x+y".to_owned(), "v1x+y".to_owned(), "gh+i".to_owned()];
    let mut workload = Workload::from_patterns(&patterns).expect("registry ruleset workload");
    workload.name = "registry".to_owned();
    workload
}

struct Row {
    suite: String,
    default_report: CostReport,
    tuned_report: CostReport,
    tuned: TuneConfig,
    evals: usize,
    strategy: &'static str,
}

fn main() {
    let scale = Scale::from_env();
    banner("tune", "autotuned vs default configuration", scale);
    let budget = eval_budget(scale);
    let space = SearchSpace::full();
    println!("  searching {} points with a {budget}-eval budget, seed {SEED}\n", space.size());

    let workloads = vec![
        Workload::pack("protomata").unwrap(),
        Workload::pack("brill").unwrap(),
        registry_workload(),
    ];

    let mut rows = Vec::new();
    for workload in &workloads {
        let outcome = tune(workload, &space, &SimCostModel, Budget::Evals(budget), SEED, None)
            .expect("tuning must succeed on the committed suites");
        // Determinism: the same seed and budget must land on the same
        // winner (the issue's acceptance criterion, asserted per suite).
        let replay = tune(workload, &space, &SimCostModel, Budget::Evals(budget), SEED, None)
            .expect("replay run");
        assert_eq!(outcome.best, replay.best, "seed {SEED} must be reproducible");
        assert!(
            outcome.best_report.cost <= outcome.default_report.cost,
            "tuned must beat or match default on {}",
            workload.name
        );
        rows.push(Row {
            suite: workload.name.to_uppercase(),
            default_report: outcome.default_report,
            tuned_report: outcome.best_report,
            tuned: outcome.best,
            evals: outcome.evals,
            strategy: outcome.strategy,
        });
    }

    let mut table =
        Table::new(vec!["suite", "source", "cycles", "throughput MB/s", "D_offset", "winner"]);
    for row in &rows {
        table.row(vec![
            row.suite.clone(),
            "default".to_owned(),
            row.default_report.cycles.to_string(),
            format!("{:.2}", row.default_report.throughput_mbps),
            row.default_report.d_offset.to_string(),
            "16x1 / canonicalize,factorize,shortest-match".to_owned(),
        ]);
        table.row(vec![
            row.suite.clone(),
            "tune.toml".to_owned(),
            row.tuned_report.cycles.to_string(),
            format!("{:.2}", row.tuned_report.throughput_mbps),
            row.tuned_report.d_offset.to_string(),
            format!(
                "{} / {}",
                row.tuned.arch.name(),
                row.tuned.compiler.pass_order.to_token_string()
            ),
        ]);
    }
    table.print();

    let regressions = rows.iter().filter(|r| r.tuned_report.cost > r.default_report.cost).count();
    assert_eq!(regressions, 0, "the searcher never dethrones the default on a tie");

    let path = std::env::var("CICERO_BENCH_TUNE").unwrap_or_else(|_| "BENCH_tune.json".to_owned());
    if path.is_empty() {
        return;
    }
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"tune\",\n");
    let _ = writeln!(json, "  \"seed\": {SEED},");
    let _ = writeln!(json, "  \"budget_evals\": {budget},");
    let _ = writeln!(json, "  \"space_points\": {},", space.size());
    json.push_str(
        "  \"notes\": \"tuned-vs-default under the sim cost model (cycles + 1e-3 per icache \
         miss) on the protomata/brill packs and the registry ruleset; each suite row pair \
         shares a workload; asserted: tuned cost <= default cost on every suite and the same \
         seed + budget reproduces the same winner; cycles/throughput are simulated at the \
         row's architecture, D_offset is the paper's speculation-depth metric\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let beats = row.tuned_report.cost <= row.default_report.cost;
        let _ = write!(
            json,
            "    {{\"suite\": \"{}\", \"config_source\": \"default\", \"cycles\": {}, \
             \"throughput_mbps\": {:.3}, \"d_offset\": {}}},\n    \
             {{\"suite\": \"{}\", \"config_source\": \"tune.toml\", \"cycles\": {}, \
             \"throughput_mbps\": {:.3}, \"d_offset\": {}, \"evals\": {}, \
             \"strategy\": \"{}\", \"winner\": \"{} / {}\", \"beats_or_matches_default\": {}}}",
            row.suite,
            row.default_report.cycles,
            row.default_report.throughput_mbps,
            row.default_report.d_offset,
            row.suite,
            row.tuned_report.cycles,
            row.tuned_report.throughput_mbps,
            row.tuned_report.d_offset,
            row.evals,
            row.strategy,
            row.tuned.arch.name(),
            row.tuned.compiler.pass_order.to_token_string(),
            beats,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"regressions\": {regressions}");
    json.push_str("}\n");
    match std::fs::write(&path, json) {
        Ok(()) => println!("\n  results written to {path}"),
        Err(e) => eprintln!("  warning: could not write {path}: {e}"),
    }
}
