//! Criterion micro-benchmarks of the compiler pipelines (statistical
//! backing for the Figure 9 comparisons).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn representative_patterns() -> Vec<String> {
    workloads::Benchmark::all(cicero_bench::SEED, 4, 1)
        .into_iter()
        .flat_map(|b| b.patterns)
        .collect()
}

fn bench_compilers(c: &mut Criterion) {
    let patterns = representative_patterns();
    let mut group = c.benchmark_group("compile_16_patterns");
    group.sample_size(20);

    group.bench_function("new_optimized", |b| {
        let compiler = cicero_core::Compiler::new();
        b.iter_batched(
            || patterns.clone(),
            |patterns| {
                for p in &patterns {
                    std::hint::black_box(compiler.compile(p).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("new_unoptimized", |b| {
        let compiler =
            cicero_core::Compiler::with_options(cicero_core::CompilerOptions::unoptimized());
        b.iter_batched(
            || patterns.clone(),
            |patterns| {
                for p in &patterns {
                    std::hint::black_box(compiler.compile(p).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("old_optimized", |b| {
        let compiler = cicero_legacy::LegacyCompiler::new(true);
        b.iter_batched(
            || patterns.clone(),
            |patterns| {
                for p in &patterns {
                    std::hint::black_box(compiler.compile(p).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("old_unoptimized", |b| {
        let compiler = cicero_legacy::LegacyCompiler::new(false);
        b.iter_batched(
            || patterns.clone(),
            |patterns| {
                for p in &patterns {
                    std::hint::black_box(compiler.compile(p).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let program = cicero_core::compile("[ab][bc][cd][de][ef][fg]").unwrap().into_program();
    let input: Vec<u8> = b"abcde".iter().cycle().take(500).copied().collect();
    let mut group = c.benchmark_group("simulate_500B_chunk");
    group.sample_size(30);
    for config in [
        cicero_sim::ArchConfig::old_organization(1),
        cicero_sim::ArchConfig::old_organization(9),
        cicero_sim::ArchConfig::new_organization(16, 1),
    ] {
        group.bench_function(config.name(), |b| {
            b.iter(|| std::hint::black_box(cicero_sim::simulate(&program, &input, &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compilers, bench_simulator);
criterion_main!(benches);
