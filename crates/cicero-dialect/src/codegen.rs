//! Code generation: `cicero.program` → binary-ready [`cicero_isa::Program`].
//!
//! Thanks to the dialect's one-to-one mapping onto the ISA (§3.3), code
//! generation is a single linear walk: assign each op its address (its
//! position), resolve symbols, and translate op-for-instruction. "The
//! one-to-one mapping reduces the complexity of the code generation step."

use std::collections::BTreeMap;
use std::fmt;

use cicero_isa::{Instruction, Program, ProgramError};
use mlir_lite::{Attribute, Operation};

use crate::ops::{attrs, names};

/// Code-generation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// The root op was not a `cicero.program`.
    NotAProgram {
        /// The op name found instead.
        found: String,
    },
    /// A `split`/`jump` referenced a symbol no op defines.
    UndefinedSymbol {
        /// The dangling symbol.
        symbol: String,
        /// Index of the referencing op.
        index: usize,
    },
    /// An op was not translatable (wrong dialect, missing attributes).
    MalformedOp {
        /// Index of the offending op.
        index: usize,
        /// Description of the problem.
        message: String,
    },
    /// The translated program failed ISA-level validation (e.g. exceeds
    /// the 8192-instruction address space).
    Invalid(ProgramError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::NotAProgram { found } => {
                write!(f, "expected cicero.program, found {found}")
            }
            CodegenError::UndefinedSymbol { symbol, index } => {
                write!(f, "op {index} references undefined symbol `{symbol}`")
            }
            CodegenError::MalformedOp { index, message } => {
                write!(f, "op {index} is malformed: {message}")
            }
            CodegenError::Invalid(e) => write!(f, "generated program is invalid: {e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<ProgramError> for CodegenError {
    fn from(e: ProgramError) -> CodegenError {
        CodegenError::Invalid(e)
    }
}

/// Translate a `cicero.program` into a validated ISA program.
///
/// # Errors
///
/// See [`CodegenError`]. IR that passed
/// [`mlir_lite::Context::verify`] against [`crate::dialect`] can only fail
/// with [`CodegenError::Invalid`] (address-space overflow).
pub fn codegen(program: &Operation) -> Result<Program, CodegenError> {
    if !program.is(names::PROGRAM) {
        return Err(CodegenError::NotAProgram { found: program.name().as_str().to_owned() });
    }
    let body = &program.only_region().ops;
    let mut symbols: BTreeMap<&str, u16> = BTreeMap::new();
    for (index, op) in body.iter().enumerate() {
        if let Some(sym) = crate::ops::sym_name(op) {
            let address = u16::try_from(index)
                .map_err(|_| CodegenError::Invalid(ProgramError::TooLong { len: body.len() }))?;
            symbols.insert(sym, address);
        }
    }
    let mut instructions = Vec::with_capacity(body.len());
    for (index, op) in body.iter().enumerate() {
        instructions.push(translate(op, index, &symbols)?);
    }
    Ok(Program::from_instructions(instructions)?)
}

fn translate(
    op: &Operation,
    index: usize,
    symbols: &BTreeMap<&str, u16>,
) -> Result<Instruction, CodegenError> {
    let char_attr = || {
        op.attr(attrs::TARGET_CHAR).and_then(Attribute::as_char).ok_or_else(|| {
            CodegenError::MalformedOp { index, message: "missing target_char".to_owned() }
        })
    };
    let target_attr = || -> Result<u16, CodegenError> {
        let symbol = op.attr(attrs::TARGET).and_then(Attribute::as_symbol).ok_or_else(|| {
            CodegenError::MalformedOp { index, message: "missing target symbol".to_owned() }
        })?;
        symbols
            .get(symbol)
            .copied()
            .ok_or_else(|| CodegenError::UndefinedSymbol { symbol: symbol.to_owned(), index })
    };
    Ok(match op.name().as_str() {
        names::ACCEPT => Instruction::Accept,
        names::ACCEPT_PARTIAL => Instruction::AcceptPartial,
        names::ACCEPT_PARTIAL_ID => {
            let id = op
                .attr(attrs::ID)
                .and_then(Attribute::as_int)
                .and_then(|i| u16::try_from(i).ok())
                .ok_or_else(|| CodegenError::MalformedOp {
                    index,
                    message: "missing or invalid id".to_owned(),
                })?;
            Instruction::AcceptPartialId(id)
        }
        names::MATCH_ANY => Instruction::MatchAny,
        names::MATCH_CHAR => Instruction::Match(char_attr()?),
        names::NOT_MATCH_CHAR => Instruction::NotMatch(char_attr()?),
        names::SPLIT => Instruction::Split(target_attr()?),
        names::JUMP => Instruction::Jump(target_attr()?),
        other => {
            return Err(CodegenError::MalformedOp { index, message: format!("unknown op {other}") })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use mlir_lite::Attribute;

    fn labeled(mut op: Operation, sym: &str) -> Operation {
        op.set_attr(attrs::SYM_NAME, Attribute::Str(sym.to_owned()));
        op
    }

    #[test]
    fn translates_every_op_kind() {
        let program = ops::program(vec![
            labeled(ops::split("end"), "start"),
            ops::match_char(b'a'),
            ops::not_match_char(b'b'),
            ops::match_any(),
            ops::jump("start"),
            labeled(ops::accept_partial(), "end"),
            ops::accept(),
        ]);
        let compiled = codegen(&program).unwrap();
        use Instruction::*;
        assert_eq!(
            compiled.instructions(),
            &[Split(5), Match(b'a'), NotMatch(b'b'), MatchAny, Jump(0), AcceptPartial, Accept,]
        );
    }

    #[test]
    fn undefined_symbol_reported() {
        let program = ops::program(vec![ops::jump("ghost"), ops::accept()]);
        assert_eq!(
            codegen(&program),
            Err(CodegenError::UndefinedSymbol { symbol: "ghost".to_owned(), index: 0 })
        );
    }

    #[test]
    fn non_program_rejected() {
        let err = codegen(&ops::accept()).unwrap_err();
        assert!(matches!(err, CodegenError::NotAProgram { .. }));
    }

    #[test]
    fn fall_off_end_rejected_via_isa_validation() {
        let program = ops::program(vec![ops::match_char(b'a')]);
        assert!(matches!(codegen(&program), Err(CodegenError::Invalid(_))));
    }
}
