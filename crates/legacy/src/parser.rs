//! The legacy front-end: a dynamically typed recursive-descent parser.
//!
//! Grammar-compatible with the new front-end (`regex-frontend`) so the two
//! compilers accept the same patterns, but producing dictionary-shaped AST
//! nodes in the original compiler's style:
//!
//! ```text
//! root  = {"type": "root", "has_prefix": Bool, "has_suffix": Bool,
//!          "alternatives": [concat…]}
//! concat= {"type": "concat", "pieces": [piece…]}
//! piece = {"type": "piece", "atom": atom, "min"?: Int, "max"?: Int}
//! atom  = {"type": "char", "value": Int}
//!       | {"type": "any"}
//!       | {"type": "class", "chars": [Int…]}       (membership resolved)
//!       | {"type": "group", "alternatives": [concat…]}
//! ```

use crate::value::Value;
use crate::LegacyError;

/// Maximum counted-repetition bound (mirrors the new front-end).
const MAX_REPEAT: i64 = 1024;

/// Parse a pattern into a dynamic AST.
///
/// # Errors
///
/// Returns [`LegacyError`] with a plain-string message (the original
/// compiler had no spans).
pub fn parse(pattern: &str) -> Result<Value, LegacyError> {
    let mut p = P { src: pattern.as_bytes(), pos: 0 };
    if p.src.is_empty() {
        return Err(LegacyError::new("empty pattern"));
    }
    let has_prefix = !p.eat(b'^');
    let alternatives = p.alternation(0)?;
    let has_suffix = !p.eat(b'$');
    if p.pos < p.src.len() {
        return Err(LegacyError::new(format!(
            "unexpected `{}` at {}",
            p.src[p.pos] as char, p.pos
        )));
    }
    let all_empty = alternatives
        .as_list()
        .expect("alternation is a list")
        .iter()
        .all(|c| c.get("pieces").and_then(Value::as_list).is_some_and(|l| l.is_empty()));
    if all_empty {
        return Err(LegacyError::new("pattern matches only the empty string"));
    }
    let mut root = Value::node("root");
    root.set("has_prefix", Value::Bool(has_prefix));
    root.set("has_suffix", Value::Bool(has_suffix));
    root.set("alternatives", alternatives);
    Ok(root)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self, depth: usize) -> Result<Value, LegacyError> {
        let mut alternatives = vec![self.concat(depth)?];
        while self.eat(b'|') {
            alternatives.push(self.concat(depth)?);
        }
        Ok(Value::List(alternatives))
    }

    fn concat(&mut self, depth: usize) -> Result<Value, LegacyError> {
        let mut pieces = Vec::new();
        loop {
            match self.peek() {
                None | Some(b'|') => break,
                Some(b')') if depth > 0 => break,
                Some(b')') => return Err(LegacyError::new("unmatched `)`")),
                Some(b'$') if depth == 0 => break,
                Some(b'$') => return Err(LegacyError::new("`$` inside a group")),
                Some(b'^') => return Err(LegacyError::new("`^` not at pattern start")),
                _ => pieces.push(self.piece(depth)?),
            }
        }
        let mut concat = Value::node("concat");
        concat.set("pieces", Value::List(pieces));
        Ok(concat)
    }

    fn piece(&mut self, depth: usize) -> Result<Value, LegacyError> {
        let atom = self.atom(depth)?;
        let mut piece = Value::node("piece");
        piece.set("atom", atom);
        if let Some((min, max)) = self.quantifier()? {
            // `{1,1}` is the same as no quantifier — normalized away, as
            // the new front-end does.
            if !(min == 1 && max == 1) {
                piece.set("min", Value::Int(min));
                piece.set("max", Value::Int(max));
            }
        }
        Ok(piece)
    }

    fn atom(&mut self, depth: usize) -> Result<Value, LegacyError> {
        match self.peek() {
            Some(b'.') => {
                self.pos += 1;
                Ok(Value::node("any"))
            }
            Some(b'(') => {
                self.pos += 1;
                let alternatives = self.alternation(depth + 1)?;
                if !self.eat(b')') {
                    return Err(LegacyError::new("unclosed `(`"));
                }
                let all_empty = alternatives.as_list().expect("list").iter().all(|c| {
                    c.get("pieces").and_then(Value::as_list).is_some_and(|l| l.is_empty())
                });
                if all_empty {
                    return Err(LegacyError::new("group matches only the empty string"));
                }
                let mut group = Value::node("group");
                group.set("alternatives", alternatives);
                Ok(group)
            }
            Some(b'[') => self.class(),
            Some(b'\\') => {
                let (chars, single) = self.escape(false)?;
                match single {
                    Some(c) => {
                        let mut node = Value::node("char");
                        node.set("value", Value::Int(i64::from(c)));
                        Ok(node)
                    }
                    None => {
                        let mut node = Value::node("class");
                        node.set("chars", Value::List(chars));
                        Ok(node)
                    }
                }
            }
            Some(c) if b"*+?{".contains(&c) => {
                Err(LegacyError::new(format!("`{}` has nothing to repeat", c as char)))
            }
            Some(c) => {
                self.pos += 1;
                let mut node = Value::node("char");
                node.set("value", Value::Int(i64::from(c)));
                Ok(node)
            }
            None => Err(LegacyError::new("expected an atom")),
        }
    }

    /// Returns `(class member list, None)` or `(_, Some(single char))`.
    fn escape(&mut self, in_class: bool) -> Result<(Vec<Value>, Option<u8>), LegacyError> {
        debug_assert_eq!(self.peek(), Some(b'\\'));
        self.pos += 1;
        let c = self.peek().ok_or_else(|| LegacyError::new("dangling `\\`"))?;
        self.pos += 1;
        let single = |c: u8| Ok((Vec::new(), Some(c)));
        match c {
            b'n' => single(b'\n'),
            b't' => single(b'\t'),
            b'r' => single(b'\r'),
            b'0' => single(0),
            b'x' => {
                let hi = self.peek().ok_or_else(|| LegacyError::new("truncated \\x"))?;
                self.pos += 1;
                let lo = self.peek().ok_or_else(|| LegacyError::new("truncated \\x"))?;
                self.pos += 1;
                let hex = [hi, lo];
                std::str::from_utf8(&hex)
                    .ok()
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .map_or_else(|| Err(LegacyError::new("invalid \\x escape")), single)
            }
            b'd' | b'D' | b'w' | b'W' | b's' | b'S' => {
                if in_class {
                    return Err(LegacyError::new("perl classes not supported inside `[...]`"));
                }
                let mut member = [false; 256];
                match c.to_ascii_lowercase() {
                    b'd' => (b'0'..=b'9').for_each(|b| member[usize::from(b)] = true),
                    b'w' => {
                        (b'0'..=b'9').for_each(|b| member[usize::from(b)] = true);
                        (b'a'..=b'z').for_each(|b| member[usize::from(b)] = true);
                        (b'A'..=b'Z').for_each(|b| member[usize::from(b)] = true);
                        member[usize::from(b'_')] = true;
                    }
                    _ => {
                        for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
                            member[usize::from(b)] = true;
                        }
                    }
                }
                let negate = c.is_ascii_uppercase();
                let chars: Vec<Value> = (0..256)
                    .filter(|i| member[*i] != negate)
                    .map(|i| Value::Int(i as i64))
                    .collect();
                Ok((chars, None))
            }
            c if c.is_ascii_alphanumeric() => {
                Err(LegacyError::new(format!("unsupported escape `\\{}`", c as char)))
            }
            c => single(c),
        }
    }

    fn class(&mut self) -> Result<Value, LegacyError> {
        debug_assert_eq!(self.peek(), Some(b'['));
        self.pos += 1;
        let negated = self.eat(b'^');
        let mut member = [false; 256];
        let mut any = false;
        loop {
            let lo = match self.peek() {
                None => return Err(LegacyError::new("unclosed `[`")),
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    let (_, single) = self.escape(true)?;
                    single.ok_or_else(|| LegacyError::new("expected a character"))?
                }
                Some(c) => {
                    self.pos += 1;
                    c
                }
            };
            if self.peek() == Some(b'-') && self.src.get(self.pos + 1) != Some(&b']') {
                self.pos += 1;
                let hi = match self.peek() {
                    None => return Err(LegacyError::new("unclosed `[`")),
                    Some(b'\\') => {
                        let (_, single) = self.escape(true)?;
                        single.ok_or_else(|| LegacyError::new("expected a character"))?
                    }
                    Some(c) => {
                        self.pos += 1;
                        c
                    }
                };
                if lo > hi {
                    return Err(LegacyError::new(format!(
                        "reversed range `{}-{}`",
                        lo as char, hi as char
                    )));
                }
                for b in lo..=hi {
                    member[usize::from(b)] = true;
                    any = true;
                }
            } else {
                member[usize::from(lo)] = true;
                any = true;
            }
        }
        if !any {
            return Err(LegacyError::new("empty character class"));
        }
        let chars: Vec<Value> =
            (0..256).filter(|i| member[*i] != negated).map(|i| Value::Int(i as i64)).collect();
        let mut node = Value::node("class");
        node.set("chars", Value::List(chars));
        Ok(node)
    }

    /// Returns `(min, max)` with `max = -1` for unbounded.
    fn quantifier(&mut self) -> Result<Option<(i64, i64)>, LegacyError> {
        let q = match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                (0, -1)
            }
            Some(b'+') => {
                self.pos += 1;
                (1, -1)
            }
            Some(b'?') => {
                self.pos += 1;
                (0, 1)
            }
            Some(b'{') => {
                self.pos += 1;
                let min = self.int()?;
                let max = if self.eat(b',') {
                    if self.peek() == Some(b'}') {
                        -1
                    } else {
                        self.int()?
                    }
                } else {
                    min
                };
                if !self.eat(b'}') {
                    return Err(LegacyError::new("unclosed `{`"));
                }
                if max != -1 && min > max {
                    return Err(LegacyError::new(format!("reversed bounds {{{min},{max}}}")));
                }
                if max == 0 {
                    return Err(LegacyError::new("quantifier {0} matches nothing"));
                }
                if min > MAX_REPEAT || max > MAX_REPEAT {
                    return Err(LegacyError::new(format!("repetition bound exceeds {MAX_REPEAT}")));
                }
                (min, max)
            }
            _ => return Ok(None),
        };
        if matches!(self.peek(), Some(c) if b"*+?".contains(&c)) {
            return Err(LegacyError::new("modifier after a quantifier is not supported"));
        }
        Ok(Some(q))
    }

    fn int(&mut self) -> Result<i64, LegacyError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(LegacyError::new("expected a number in `{}`"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii digits")
            .parse()
            .map_err(|_| LegacyError::new("repetition bound too large"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_shapes() {
        let root = parse("a+|[bc]").unwrap();
        assert_eq!(root.node_type(), Some("root"));
        assert_eq!(root.get("has_prefix").and_then(Value::as_bool), Some(true));
        let alts = root.get("alternatives").and_then(Value::as_list).unwrap();
        assert_eq!(alts.len(), 2);
        let piece = &alts[0].get("pieces").and_then(Value::as_list).unwrap()[0];
        assert_eq!(piece.get("min").and_then(Value::as_int), Some(1));
        assert_eq!(piece.get("max").and_then(Value::as_int), Some(-1));
        let class =
            alts[1].get("pieces").and_then(Value::as_list).unwrap()[0].get("atom").unwrap().clone();
        assert_eq!(class.node_type(), Some("class"));
        assert_eq!(class.get("chars").and_then(Value::as_list).unwrap().len(), 2);
    }

    #[test]
    fn negated_class_is_resolved() {
        let root = parse("[^ab]").unwrap();
        let alts = root.get("alternatives").and_then(Value::as_list).unwrap();
        let atom =
            alts[0].get("pieces").and_then(Value::as_list).unwrap()[0].get("atom").unwrap().clone();
        assert_eq!(atom.get("chars").and_then(Value::as_list).unwrap().len(), 254);
    }

    #[test]
    fn anchors() {
        let root = parse("^a$").unwrap();
        assert_eq!(root.get("has_prefix").and_then(Value::as_bool), Some(false));
        assert_eq!(root.get("has_suffix").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn rejects_like_the_new_frontend() {
        for bad in ["", "(", "a)", "[", "[]", "[z-a]", "a{3,1}", "a{0}", "*a", "a**", r"\q", "()"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
