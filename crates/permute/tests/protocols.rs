//! Exhaustive interleaving exploration of the three serving-path
//! protocols, plus proof that the explorer catches each protocol's
//! historical bug when it is deliberately re-introduced.

use cicero_permute::models::{AdmissionModel, DrainModel, RespawnModel, SwapModel};
use cicero_permute::{replay, Explorer, ViolationKind};

fn explorer() -> Explorer {
    Explorer::default()
}

// --- admission: bounded queue full/drain race ------------------------------

#[test]
fn admission_protocol_passes_every_interleaving() {
    let model =
        AdmissionModel { connections: 3, queue_depth: 1, workers: 2, gauge_after_send: false };
    let report = explorer().explore(&model).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.schedules > 100, "suspiciously small space: {report:?}");
}

#[test]
fn admission_single_worker_deep_queue_passes() {
    let model =
        AdmissionModel { connections: 4, queue_depth: 2, workers: 1, gauge_after_send: false };
    explorer().explore(&model).unwrap_or_else(|v| panic!("{v}"));
}

#[test]
fn counting_after_send_underflows_the_gauge() {
    let model =
        AdmissionModel { connections: 2, queue_depth: 1, workers: 1, gauge_after_send: true };
    let violation = explorer().explore(&model).unwrap_err();
    assert_eq!(violation.kind, ViolationKind::Invariant, "{violation}");
    assert!(violation.message.contains("underflow"), "{violation}");
    // The reported schedule is a genuine repro, not an artifact.
    let (_, verdict) = replay(&model, &violation.schedule);
    assert!(verdict.unwrap_err().contains("underflow"));
}

// --- drain: shutdown vs in-flight and parked-but-readable ------------------

#[test]
fn drain_protocol_passes_every_interleaving() {
    let model = DrainModel {
        parked: vec![true, true, false],
        queue_depth: 1,
        workers: 2,
        close_parked_on_drain: false,
    };
    let report = explorer().explore(&model).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.schedules > 100, "suspiciously small space: {report:?}");
}

#[test]
fn drain_with_every_connection_readable_passes() {
    let model = DrainModel {
        parked: vec![true, true],
        queue_depth: 1,
        workers: 1,
        close_parked_on_drain: false,
    };
    explorer().explore(&model).unwrap_or_else(|v| panic!("{v}"));
}

#[test]
fn closing_parked_connections_on_drain_drops_requests() {
    let model = DrainModel {
        parked: vec![true, false],
        queue_depth: 1,
        workers: 1,
        close_parked_on_drain: true,
    };
    let violation = explorer().explore(&model).unwrap_err();
    assert_eq!(violation.kind, ViolationKind::Postcondition, "{violation}");
    assert!(violation.message.contains("closed unserved"), "{violation}");
    let (_, verdict) = replay(&model, &violation.schedule);
    assert!(verdict.unwrap_err().contains("closed unserved"));
}

// --- respawn: worker panic/respawn during a set scan -----------------------

#[test]
fn respawn_protocol_passes_every_interleaving() {
    let model = RespawnModel { panics: vec![0, 1, 2], workers: 2, lose_input_on_panic: false };
    let report = explorer().explore(&model).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.schedules > 100, "suspiciously small space: {report:?}");
}

#[test]
fn respawn_with_every_input_panicking_once_passes() {
    let model = RespawnModel { panics: vec![1, 1], workers: 2, lose_input_on_panic: false };
    explorer().explore(&model).unwrap_or_else(|v| panic!("{v}"));
}

#[test]
fn abandoning_inputs_on_panic_loses_matches() {
    let model = RespawnModel { panics: vec![0, 1], workers: 2, lose_input_on_panic: true };
    let violation = explorer().explore(&model).unwrap_err();
    assert_eq!(violation.kind, ViolationKind::Postcondition, "{violation}");
    assert!(violation.message.contains("never scanned"), "{violation}");
    let (_, verdict) = replay(&model, &violation.schedule);
    assert!(verdict.unwrap_err().contains("never scanned"));
}

// --- swap: ruleset hot reload vs in-flight scans vs drain ------------------

#[test]
fn swap_protocol_passes_every_interleaving() {
    let model = SwapModel { scanners: 2, swaps: 1, free_old_while_pinned: false };
    let report = explorer().explore(&model).unwrap_or_else(|v| panic!("{v}"));
    assert!(report.schedules > 100, "suspiciously small space: {report:?}");
}

#[test]
fn swap_protocol_survives_back_to_back_swaps() {
    // A scanner admitted before the first swap can stay pinned to v0
    // across *both* swaps; the reaper must wait it out before releasing.
    let model = SwapModel { scanners: 1, swaps: 2, free_old_while_pinned: false };
    explorer().explore(&model).unwrap_or_else(|v| panic!("{v}"));
}

#[test]
fn freeing_the_old_version_at_retire_is_a_use_after_release() {
    let model = SwapModel { scanners: 1, swaps: 1, free_old_while_pinned: true };
    let violation = explorer().explore(&model).unwrap_err();
    assert_eq!(violation.kind, ViolationKind::Invariant, "{violation}");
    assert!(violation.message.contains("use-after-release"), "{violation}");
    let (_, verdict) = replay(&model, &violation.schedule);
    assert!(verdict.unwrap_err().contains("use-after-release"));
}
