//! Per-core direct-mapped instruction cache.

use crate::config::CacheConfig;

/// A direct-mapped instruction cache indexed by line.
///
/// Tags are instruction-memory line numbers; a lookup either hits or
/// installs the line (the fill cost is modelled by the machine through the
/// engine's memory port, not here).
#[derive(Debug, Clone)]
pub struct ICache {
    line_size: usize,
    tags: Vec<Option<usize>>,
    hits: u64,
    misses: u64,
}

impl ICache {
    /// An empty (all-invalid) cache.
    pub fn new(config: &CacheConfig) -> ICache {
        assert!(config.lines >= 1 && config.line_size.is_power_of_two());
        ICache { line_size: config.line_size, tags: vec![None; config.lines], hits: 0, misses: 0 }
    }

    /// Look up the line holding `pc`; on a miss the line is installed and
    /// `false` is returned (the caller charges the fill latency).
    pub fn access(&mut self, pc: u16) -> bool {
        let line_number = usize::from(pc) / self.line_size;
        let index = line_number % self.tags.len();
        if self.tags[index] == Some(line_number) {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.tags[index] = Some(line_number);
            false
        }
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(lines: usize, line_size: usize) -> ICache {
        ICache::new(&CacheConfig { lines, line_size, miss_penalty: 4 })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = cache(4, 4);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(3), "same line");
        assert!(!c.access(4), "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn conflict_misses_on_aliasing_lines() {
        let mut c = cache(2, 4);
        // Lines 0 and 2 alias (index 0); ping-pong misses.
        assert!(!c.access(0));
        assert!(!c.access(8));
        assert!(!c.access(0));
        assert!(!c.access(8));
        assert_eq!(c.misses(), 4);
    }

    #[test]
    fn far_jumps_miss_where_near_code_hits() {
        // The D_offset intuition: straight-line code touches few lines.
        let mut near = cache(8, 4);
        for pc in 0..32u16 {
            near.access(pc);
        }
        assert_eq!(near.misses(), 8, "one per line");
        let mut far = cache(8, 4);
        for i in 0..16u16 {
            far.access(i * 37 % 512);
        }
        assert!(far.misses() > 8);
    }
}
