//! The *Jump Simplification* back-end optimization (§5).
//!
//! Applied to each `JumpOp` of a `cicero.program`, to a fixed point:
//!
//! 1. a jump targeting the next operation is removed;
//! 2. a jump targeting an acceptance op is **replaced by a copy of that
//!    acceptance op** — "we relax the condition of a single acceptance
//!    state", letting the NFA traversal stop as soon as possible;
//! 3. a jump targeting another jump is retargeted to the final destination
//!    of the chain (unconditional jump threading, applied recursively).
//!
//! `SplitOp` targets are threaded through jump chains too — the same
//! always-safe unconditional threading the paper's footnote relates to
//! LLVM's JumpThreading.
//!
//! After the rules converge, unreachable operations are removed (the
//! orphaned shared-acceptance block of Listing 2's middle layout); this is
//! what shrinks `ab|cd` from 11 to 10 instructions while dropping
//! `D_offset` from 14 to 9.
//!
//! Because control flow is still symbolic at this level, none of these
//! rewrites re-patch addresses — the optimization the old compiler could
//! not express cheaply after its premature lowering (§2.1).

use std::collections::BTreeMap;

use mlir_lite::{Attribute, Context, Operation, Pass, PassError};

use crate::ops::{self, attrs, names};

/// Run Jump Simplification on a `cicero.program` in place.
///
/// # Panics
///
/// Panics if `program` is not a verified `cicero.program` (undefined
/// symbols, foreign ops).
pub fn jump_simplify(program: &mut Operation) {
    assert!(program.is(names::PROGRAM), "expected cicero.program, got {}", program.name());
    loop {
        let mut changed = false;
        changed |= thread_jump_chains(program);
        changed |= duplicate_acceptances(program);
        changed |= remove_jumps_to_next(program);
        changed |= remove_unreachable(program);
        if !changed {
            break;
        }
    }
}

/// [`jump_simplify`] as a pass for pipeline assembly.
#[derive(Debug, Clone, Copy, Default)]
pub struct JumpSimplificationPass;

impl Pass for JumpSimplificationPass {
    fn name(&self) -> &'static str {
        "cicero-jump-simplification"
    }

    fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
        if !root.is(names::PROGRAM) {
            return Err(PassError::new(format!("expected cicero.program, got {}", root.name())));
        }
        jump_simplify(root);
        Ok(())
    }
}

/// Map symbol → defining index.
fn symbol_table(body: &[Operation]) -> BTreeMap<String, usize> {
    body.iter()
        .enumerate()
        .filter_map(|(i, op)| ops::sym_name(op).map(|s| (s.to_owned(), i)))
        .collect()
}

/// Rule 3 (+ split extension): follow chains of unconditional jumps.
fn thread_jump_chains(program: &mut Operation) -> bool {
    let body = &mut program.only_region_mut().ops;
    let symbols = symbol_table(body);
    let resolve_final = |start: &str| -> Option<String> {
        let mut current = start.to_owned();
        // Bounded walk: cycles of jumps (degenerate but representable)
        // terminate at the bound and are left alone.
        for _ in 0..body.len() {
            let index = *symbols.get(&current)?;
            let target_op = &body[index];
            if !target_op.is(names::JUMP) {
                break;
            }
            current = ops::branch_target(target_op)?.to_owned();
        }
        Some(current)
    };
    let mut updates = Vec::new();
    for (i, op) in body.iter().enumerate() {
        if let Some(target) = ops::branch_target(op) {
            if let Some(final_target) = resolve_final(target) {
                if final_target != target {
                    updates.push((i, final_target));
                }
            }
        }
    }
    let changed = !updates.is_empty();
    for (i, target) in updates {
        body[i].set_attr(attrs::TARGET, Attribute::Symbol(target));
    }
    changed
}

/// Rule 2: replace jumps to acceptance ops with the acceptance itself.
fn duplicate_acceptances(program: &mut Operation) -> bool {
    let body = &mut program.only_region_mut().ops;
    let symbols = symbol_table(body);
    let mut replacements = Vec::new();
    for (i, op) in body.iter().enumerate() {
        if !op.is(names::JUMP) {
            continue;
        }
        let target = ops::branch_target(op).expect("verified jump");
        let Some(&target_index) = symbols.get(target) else { continue };
        if ops::is_acceptance(&body[target_index]) {
            // Clone the acceptance wholesale: `accept_partial_id` carries
            // the RE identifier that the duplicate must preserve.
            let mut clone = body[target_index].clone();
            clone.take_attr(attrs::SYM_NAME);
            replacements.push((i, clone));
        }
    }
    let changed = !replacements.is_empty();
    for (i, mut replacement) in replacements {
        if let Some(sym) = ops::sym_name(&body[i]) {
            replacement.set_attr(attrs::SYM_NAME, Attribute::Str(sym.to_owned()));
        }
        body[i] = replacement;
    }
    changed
}

/// Rule 1: remove jumps that target the very next operation.
///
/// All removable jumps are collected in one scan and removed in one
/// rebuild — the scan-per-removal alternative would make this pass
/// quadratic on the alternation-heavy suites.
fn remove_jumps_to_next(program: &mut Operation) -> bool {
    let body = &mut program.only_region_mut().ops;
    let symbols = symbol_table(body);
    let removable: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(index, op)| {
            op.is(names::JUMP)
                && ops::branch_target(op)
                    .and_then(|t| symbols.get(t))
                    .is_some_and(|&t| t == index + 1)
        })
        .map(|(index, _)| index)
        .collect();
    if removable.is_empty() {
        return false;
    }
    // Symbols on removed jumps migrate to the next kept op: either adopt
    // the symbol, or fold it into the op's existing one.
    let mut folds: Vec<(String, String)> = Vec::new(); // (from, into)
    for &index in removable.iter().rev() {
        let Some(sym) = ops::sym_name(&body[index]).map(str::to_owned) else { continue };
        // `index + 1` exists: the jump targets it.
        match ops::sym_name(&body[index + 1]).map(str::to_owned) {
            Some(existing) => folds.push((sym, existing)),
            None => {
                let owned = sym.clone();
                body[index + 1].set_attr(attrs::SYM_NAME, Attribute::Str(owned));
            }
        }
    }
    let mut keep = (0..body.len()).map(|i| !removable.contains(&i));
    body.retain(|_| keep.next().expect("one flag per op"));
    if !folds.is_empty() {
        // Resolve fold chains (a folded-into symbol may itself be folded).
        let resolve = |start: &str| -> String {
            let mut current = start.to_owned();
            for _ in 0..folds.len() + 1 {
                match folds.iter().find(|(from, _)| *from == current) {
                    Some((_, into)) => current = into.clone(),
                    None => break,
                }
            }
            current
        };
        for op in body.iter_mut() {
            if let Some(target) = ops::branch_target(op).map(str::to_owned) {
                let resolved = resolve(&target);
                if resolved != target {
                    op.set_attr(attrs::TARGET, Attribute::Symbol(resolved));
                }
            }
        }
    }
    true
}

/// Remove operations unreachable from the entry (index 0): acceptance and
/// jump ops do not fall through, so code after them is dead unless
/// branched to.
fn remove_unreachable(program: &mut Operation) -> bool {
    let body = &mut program.only_region_mut().ops;
    if body.is_empty() {
        return false;
    }
    let symbols = symbol_table(body);
    let mut reachable = vec![false; body.len()];
    let mut worklist = vec![0usize];
    while let Some(index) = worklist.pop() {
        if index >= body.len() || reachable[index] {
            continue;
        }
        reachable[index] = true;
        let op = &body[index];
        if ops::falls_through(op) {
            worklist.push(index + 1);
        }
        if let Some(target) = ops::branch_target(op) {
            if let Some(&t) = symbols.get(target) {
                worklist.push(t);
            }
        }
    }
    if reachable.iter().all(|r| *r) {
        return false;
    }
    let mut keep = reachable.iter();
    body.retain(|_| *keep.next().expect("one flag per op"));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::codegen;
    use crate::lowering::lower_to_cicero;
    use cicero_isa::Instruction;
    use mlir_lite::Context;

    fn simplified(pattern: &str) -> cicero_isa::Program {
        let ast = regex_frontend::parse(pattern).unwrap();
        let ir = regex_dialect::ast_to_ir(&ast);
        let mut program = lower_to_cicero(&ir);
        jump_simplify(&mut program);
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        ctx.verify(&program).expect("simplified IR must verify");
        codegen(&program).unwrap()
    }

    #[test]
    fn listing2_jump_simplification_column() {
        use Instruction::*;
        // The exact right column of Listing 2: D_offset 9, 10 instructions.
        let program = simplified("ab|cd");
        assert_eq!(
            program.instructions(),
            &[
                Split(3),
                MatchAny,
                Jump(0),
                Split(7),
                Match(b'a'),
                Match(b'b'),
                AcceptPartial,
                Match(b'c'),
                Match(b'd'),
                AcceptPartial,
            ]
        );
        assert_eq!(program.total_jump_offset(), 9);
    }

    #[test]
    fn loop_back_jumps_survive() {
        use Instruction::*;
        // The `.*` prefix loop's back jump is load-bearing.
        let program = simplified("^a*$");
        assert_eq!(program.instructions(), &[Split(3), Match(b'a'), Jump(0), Accept]);
    }

    #[test]
    fn jump_chains_are_threaded() {
        use crate::ops::*;
        use mlir_lite::Attribute;
        let labeled = |mut op: Operation, s: &str| {
            op.set_attr(attrs::SYM_NAME, Attribute::Str(s.to_owned()));
            op
        };
        // match a; jmp @x; …; x: jmp @y; …; y: match b; accept
        let mut program = program(vec![
            match_char(b'a'),
            jump("x"),
            labeled(jump("y"), "x"),
            labeled(match_char(b'b'), "y"),
            accept_partial(),
        ]);
        jump_simplify(&mut program);
        let compiled = codegen(&program).unwrap();
        use Instruction::*;
        // jmp@x threads to y; x: jmp@y becomes unreachable and is removed;
        // then jmp@y targets next and is removed too.
        assert_eq!(compiled.instructions(), &[Match(b'a'), Match(b'b'), AcceptPartial]);
    }

    #[test]
    fn symbol_on_removed_jump_migrates() {
        use crate::ops::*;
        use mlir_lite::Attribute;
        let labeled = |mut op: Operation, s: &str| {
            op.set_attr(attrs::SYM_NAME, Attribute::Str(s.to_owned()));
            op
        };
        // split targets the jump that will be removed.
        let mut program = program(vec![
            split("j"),
            match_char(b'a'),
            labeled(jump("k"), "j"),
            labeled(match_char(b'b'), "k"),
            accept_partial(),
        ]);
        jump_simplify(&mut program);
        let compiled = codegen(&program).unwrap();
        use Instruction::*;
        assert_eq!(compiled.instructions(), &[Split(2), Match(b'a'), Match(b'b'), AcceptPartial]);
    }

    #[test]
    fn simplification_is_idempotent() {
        for pattern in ["ab|cd", "a|b|c", "(ab)+x?", "th(is|at|ose)"] {
            let ast = regex_frontend::parse(pattern).unwrap();
            let ir = regex_dialect::ast_to_ir(&ast);
            let mut once = lower_to_cicero(&ir);
            jump_simplify(&mut once);
            let mut twice = once.clone();
            jump_simplify(&mut twice);
            assert_eq!(once, twice, "not idempotent on {pattern}");
        }
    }

    #[test]
    fn simplification_never_grows_code_or_d_offset() {
        for pattern in ["ab|cd", "a|b|c|d", "x(y|z)+w", "[abc]{2,3}", "a*b*c*"] {
            let ast = regex_frontend::parse(pattern).unwrap();
            let ir = regex_dialect::ast_to_ir(&ast);
            let baseline = lower_to_cicero(&ir);
            let unopt = codegen(&baseline).unwrap();
            let mut optimized = baseline.clone();
            jump_simplify(&mut optimized);
            let opt = codegen(&optimized).unwrap();
            assert!(opt.len() <= unopt.len(), "{pattern}: grew");
            assert!(
                opt.total_jump_offset() <= unopt.total_jump_offset(),
                "{pattern}: D_offset grew from {} to {}",
                unopt.total_jump_offset(),
                opt.total_jump_offset()
            );
        }
    }
}
