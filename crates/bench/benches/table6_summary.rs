//! **Table 6** — the end-to-end result: best old configuration + old
//! compiler versus best new configuration + new compiler.
//!
//! Reproduction targets: ~2.27x speedup and ~2.30x energy improvement on
//! PROTOMATA4, ~1.35x/1.49x on BRILL4, ~1.48x/1.56x averaged overall.

use cicero_bench::{banner, f2, measure, paper, suites, CompiledSuite, Measurement, Scale, Table};
use cicero_sim::ArchConfig;

fn main() {
    let scale = Scale::from_env();
    banner("Table 6", "old compiler + old arch vs new compiler + new arch", scale);
    let compiled: Vec<CompiledSuite> = suites(scale).iter().map(CompiledSuite::build).collect();

    let old_configs = [ArchConfig::old_organization(9), ArchConfig::old_organization(16)];
    let new_configs = [ArchConfig::new_organization(8, 1), ArchConfig::new_organization(16, 1)];

    let mut table = Table::new(vec![
        "configuration",
        "P4 [us]",
        "P4 [W·µs]",
        "B4 [us]",
        "B4 [W·µs]",
        "AVG [us]",
        "AVG [W·µs]",
    ]);
    let run = |programs: &dyn Fn(&CompiledSuite) -> &[cicero_isa::Program],
               config: &ArchConfig|
     -> Vec<Measurement> {
        compiled.iter().map(|s| measure(programs(s), &s.chunks, config)).collect()
    };
    let summarize = |ms: &[Measurement]| -> [f64; 6] {
        let avg_t = ms.iter().map(|m| m.avg_time_us).sum::<f64>() / ms.len() as f64;
        let avg_e = ms.iter().map(|m| m.avg_energy_wus).sum::<f64>() / ms.len() as f64;
        [
            ms[2].avg_time_us,
            ms[2].avg_energy_wus,
            ms[3].avg_time_us,
            ms[3].avg_energy_wus,
            avg_t,
            avg_e,
        ]
    };

    let mut best_old = [f64::INFINITY; 6];
    let mut best_new = [f64::INFINITY; 6];
    for config in &old_configs {
        let row = summarize(&run(&|s: &CompiledSuite| s.old_opt.as_slice(), config));
        for k in 0..6 {
            best_old[k] = best_old[k].min(row[k]);
        }
        table.row(
            std::iter::once(format!("Old Compiler, {}", config.name()))
                .chain(row.iter().map(|x| f2(*x)))
                .collect::<Vec<String>>(),
        );
    }
    for config in &new_configs {
        let row = summarize(&run(&|s: &CompiledSuite| s.new_opt.as_slice(), config));
        for k in 0..6 {
            best_new[k] = best_new[k].min(row[k]);
        }
        table.row(
            std::iter::once(format!("New Compiler, {}", config.name()))
                .chain(row.iter().map(|x| f2(*x)))
                .collect::<Vec<String>>(),
        );
    }
    let ratios: Vec<String> =
        (0..6).map(|k| format!("{}x", f2(best_old[k] / best_new[k]))).collect();
    table
        .row(std::iter::once("Best(old) / Best(new)".to_owned()).chain(ratios).collect::<Vec<_>>());
    table.print();
    println!(
        "\n  paper ratios: P4 {}x time / {}x energy; B4 {}x/{}x; overall {}x/{}x",
        paper::TABLE6_SPEEDUP[0],
        paper::TABLE6_ENERGY[0],
        paper::TABLE6_SPEEDUP[1],
        paper::TABLE6_ENERGY[1],
        paper::TABLE6_SPEEDUP[2],
        paper::TABLE6_ENERGY[2],
    );
}
