//! Transformation set 2 (§3.2): alternation prefix factorization.
//!
//! "Factorizing alternations that contain the same prefix, applying the
//! distribution property of the concatenation with respect to the
//! alternation. These optimizations are implemented for the sub-Regex and
//! for the root regex." Examples (reproduced in tests):
//!
//! * `this|that|those → th(is|at|ose)`
//! * `a(bc|bd) → a(b(c|d))`
//!
//! Factoring is language-preserving unconditionally: for any regular
//! languages, `X·Y ∪ X·Z = X·(Y ∪ Z)`, so two alternatives may be grouped
//! whenever their leading pieces are structurally identical (same atom
//! *and* same quantifier).

use mlir_lite::{Context, Operation, Pass, PassError};

use crate::ops::{self, names};

/// The factorization pass. Runs bottom-up so that alternatives whose inner
/// sub-regexes only become identical after their own factorization still
/// factor at the outer level, and iterates each level to a fixed point so
/// multi-character prefixes (`th` in `this|that`) are peeled completely.
#[derive(Debug, Clone, Copy, Default)]
pub struct FactorizeAlternationsPass;

impl Pass for FactorizeAlternationsPass {
    fn name(&self) -> &'static str {
        "regex-factorize-alternations"
    }

    fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
        factorize_rec(root);
        Ok(())
    }
}

/// Post-order factorization over every alternation container.
fn factorize_rec(op: &mut Operation) {
    for region in op.regions_mut() {
        for child in &mut region.ops {
            factorize_rec(child);
        }
    }
    if op.is(names::ROOT) || op.is(names::SUB_REGEX) {
        // Each round peels at least one shared piece; rounds are bounded by
        // the longest alternative.
        let mut changed = false;
        while factorize_level(op) {
            changed = true;
        }
        if changed {
            // Factoring wraps remainders in fresh sub-regexes (e.g. the
            // `his|hat|hose` inside `t(his|hat|hose)`); descend again so
            // they factor too. Terminates because every round strictly
            // shortens the remainders being re-examined.
            for region in op.regions_mut() {
                for child in &mut region.ops {
                    factorize_rec(child);
                }
            }
        }
    }
}

/// One factoring round on the direct alternatives of `container`.
/// Returns whether anything changed.
fn factorize_level(container: &mut Operation) -> bool {
    let alternatives = &mut container.only_region_mut().ops;
    if alternatives.len() < 2 {
        return false;
    }

    // Bucket alternatives by their leading piece, preserving first-seen
    // order. Empty alternatives are unfactorable and keep their position.
    struct Bucket {
        leading: Option<Operation>, // None for empty alternatives
        members: Vec<Operation>,    // the original concatenations
    }
    let mut buckets: Vec<Bucket> = Vec::new();
    for concat in alternatives.drain(..) {
        let leading = concat.only_region().ops.first().cloned();
        match buckets.iter_mut().find(|b| b.leading == leading && leading.is_some()) {
            Some(bucket) => bucket.members.push(concat),
            None => buckets.push(Bucket { leading, members: vec![concat] }),
        }
    }

    let mut changed = false;
    let mut rebuilt = Vec::with_capacity(buckets.len());
    for bucket in buckets {
        if bucket.members.len() < 2 {
            rebuilt.extend(bucket.members);
            continue;
        }
        changed = true;
        // Peel the *longest* common prefix in one step, so
        // `this|that|those` becomes `th(is|at|ose)` directly (as in the
        // paper) rather than `t(h(is|at|ose))`.
        let prefix_len = {
            let first = bucket.members[0].only_region();
            let mut k = 1; // the leading piece is known equal
            'grow: while k < first.len() {
                let candidate = &first.ops[k];
                for member in &bucket.members[1..] {
                    if member.only_region().ops.get(k) != Some(candidate) {
                        break 'grow;
                    }
                }
                k += 1;
            }
            k
        };
        let mut members = bucket.members.into_iter();
        let mut first = members.next().expect("bucket has members");
        let remainder_of = |concat: &mut Operation| {
            let rest = concat.only_region_mut().ops.split_off(prefix_len);
            ops::concatenation(rest)
        };
        let first_rest = remainder_of(&mut first);
        let mut common = std::mem::take(&mut first.only_region_mut().ops);
        let mut remainders = vec![first_rest];
        for mut member in members {
            remainders.push(remainder_of(&mut member));
        }
        if remainders.iter().all(|c| c.only_region().is_empty()) {
            // `ab|ab` degenerates to `ab`.
            rebuilt.push(ops::concatenation(common));
        } else {
            common.push(ops::piece(ops::sub_regex(remainders), None));
            rebuilt.push(ops::concatenation(common));
        }
    }
    container.only_region_mut().ops = rebuilt;
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ast_to_ir, ir_to_pattern};
    use mlir_lite::Context;

    fn factorize(pattern: &str) -> String {
        let mut ir = ast_to_ir(&regex_frontend::parse(pattern).unwrap());
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        FactorizeAlternationsPass.run(&mut ir, &ctx).unwrap();
        ctx.verify(&ir).expect("factorized IR must verify");
        ir_to_pattern(&ir)
    }

    #[test]
    fn paper_examples() {
        assert_eq!(factorize("this|that|those"), "th(is|at|ose)");
        assert_eq!(factorize("a(bc|bd)"), "a(b(c|d))");
    }

    #[test]
    fn no_common_prefix_is_untouched() {
        assert_eq!(factorize("ab|cd"), "ab|cd");
        assert_eq!(factorize("a|b|c"), "a|b|c");
    }

    #[test]
    fn partial_groups_factor_independently() {
        assert_eq!(factorize("ax|ay|bz"), "a(x|y)|bz");
    }

    #[test]
    fn quantifiers_must_match_to_factor() {
        // `a+x|ay`: a+ and a are different leading pieces.
        assert_eq!(factorize("a+x|ay"), "a+x|ay");
        // Identical quantified prefixes do factor.
        assert_eq!(factorize("a+x|a+y"), "a+(x|y)");
    }

    #[test]
    fn identical_alternatives_deduplicate() {
        assert_eq!(factorize("ab|ab"), "ab");
    }

    #[test]
    fn prefix_of_other_alternative_keeps_empty_branch() {
        // `ab|abc` → `ab(|c)`: the empty branch preserves the short match.
        assert_eq!(factorize("ab|abc"), "ab(|c)");
    }

    #[test]
    fn factoring_reaches_nested_sub_regexes_bottom_up() {
        // The inner alternation factors first, making the outer leading
        // pieces identical, which then factor too.
        assert_eq!(factorize("(bc|bd)x|(b(c|d))y"), "(b(c|d))(x|y)");
    }

    #[test]
    fn classes_factor_when_bitmaps_match() {
        assert_eq!(factorize("[ab]x|[ab]y"), "[ab](x|y)");
        assert_eq!(factorize("[ab]x|[ac]y"), "[ab]x|[ac]y");
    }

    #[test]
    fn order_of_first_occurrence_is_preserved() {
        assert_eq!(factorize("bz|ax|ay"), "bz|a(x|y)");
    }

    #[test]
    fn idempotent() {
        for p in ["this|that|those", "ax|ay|bz", "ab|abc", "a(bc|bd)"] {
            let once = factorize(p);
            assert_eq!(factorize(&once), once, "not idempotent on {p}");
        }
    }
}
