//! The ruleset registry: named, versioned, persisted pattern sets with
//! zero-downtime hot reload.
//!
//! The paper's motivating deployments (§6 intrusion detection, log
//! scanning) do not ship their rule sets in every request — they load a
//! versioned ruleset once and swap it under live traffic. This module is
//! that lifecycle for the serving tier:
//!
//! * **`put`** compiles the pattern list once through
//!   [`Runtime::compile_set`] (so both backends share the cache entry),
//!   derives a *content-hash version* (FNV-1a 64 over the pattern list
//!   and the encoded program artifact, rendered as 16 hex chars), wraps
//!   it in a [`SetHandle`], and installs it as the current version —
//!   atomically, under the registry lock.
//! * **`pin`** is how a scan acquires the ruleset: the lookup and the
//!   pin happen under the same lock a swap takes, so a request observes
//!   either the old or the new version, never a retired-and-released
//!   one. The returned [`PinGuard`] keeps the version's drain
//!   accounting alive for the duration of the scan.
//! * **Swap/drain**: a replaced (or deleted) version is
//!   [`retire`](SetHandle::retire)d and parked on a retired list;
//!   in-flight scans drain on it, and a sweep releases it (drops the
//!   registry's reference and counts `registry.versions_released`) once
//!   its last pin drops. The protocol — including the bug where the old
//!   version is freed while still pinned — is model-checked by
//!   `cicero-permute`'s `SwapModel`.
//! * **Persistence**: with a persist directory configured, each put
//!   writes `{id}.ruleset` — a text envelope over the hex-encoded
//!   pattern list and the [`EncodedProgram`] byte artifact (the paper's
//!   progressive-lowering argument: the *compiled*, backend-independent
//!   program is the stored unit, not the source patterns alone) — via a
//!   write-then-rename so readers never see a torn file. `load_dir`
//!   restores them at startup, verifying the content hash.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use cicero_core::CompileError;
use cicero_isa::{EncodedProgram, Program};
use cicero_runtime::{PinGuard, Runtime, SetHandle};
use cicero_telemetry::Telemetry;

/// Ceiling on ruleset id length (ids become file stems).
pub const MAX_RULESET_ID: usize = 64;

/// The on-disk envelope's magic first line.
const MAGIC: &str = "cicero-ruleset v1";

/// Why a registry operation failed.
#[derive(Debug)]
pub enum RegistryError {
    /// The id is empty, too long, or contains characters unsafe for a
    /// file stem.
    InvalidId(String),
    /// The pattern set did not compile.
    Compile(CompileError),
    /// No ruleset under that id.
    NotFound(String),
    /// Persisting or loading the artifact failed at the filesystem.
    Io(io::Error),
    /// A persisted artifact was malformed or failed its hash check.
    Corrupt(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::InvalidId(id) => write!(
                f,
                "invalid ruleset id {id:?}: use 1-{MAX_RULESET_ID} chars of [A-Za-z0-9._-]"
            ),
            RegistryError::Compile(e) => write!(f, "compiling the pattern set: {e}"),
            RegistryError::NotFound(id) => write!(f, "no ruleset {id:?}"),
            RegistryError::Io(e) => write!(f, "ruleset store i/o: {e}"),
            RegistryError::Corrupt(m) => write!(f, "corrupt ruleset artifact: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<io::Error> for RegistryError {
    fn from(e: io::Error) -> RegistryError {
        RegistryError::Io(e)
    }
}

/// The outcome of a `put`: the installed version and whether it
/// replaced an existing one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutOutcome {
    /// The content-hash version now serving.
    pub version: String,
    /// The version that was current before (`None` on first put).
    pub replaced: Option<String>,
    /// Whether the compiled program came out of the runtime cache.
    pub cache_hit: bool,
}

/// A point-in-time description of one ruleset (for `GET`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulesetInfo {
    /// The registry id.
    pub id: String,
    /// The current content-hash version.
    pub version: String,
    /// The pattern list, in match-identifier order.
    pub patterns: Vec<String>,
    /// In-flight scans pinned to the current version right now.
    pub pins: u64,
}

/// Named → current-version map plus the drain accounting for retired
/// versions. Construction-time cheap; share behind the server's `Shared`.
pub struct RulesetRegistry {
    entries: Mutex<HashMap<String, Arc<SetHandle>>>,
    /// Superseded versions still pinned by in-flight scans. Swept on
    /// every mutation (and by `sweep`); a drained entry is dropped and
    /// counted as released.
    retired: Mutex<Vec<Arc<SetHandle>>>,
    persist_dir: Option<PathBuf>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for RulesetRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RulesetRegistry")
            .field("rulesets", &self.entries.lock().unwrap_or_else(|p| p.into_inner()).len())
            .field("persist_dir", &self.persist_dir)
            .finish()
    }
}

impl RulesetRegistry {
    /// An empty registry. `persist_dir`, when set, receives one
    /// `{id}.ruleset` artifact per ruleset.
    pub fn new(persist_dir: Option<PathBuf>, telemetry: Telemetry) -> RulesetRegistry {
        RulesetRegistry {
            entries: Mutex::new(HashMap::new()),
            retired: Mutex::new(Vec::new()),
            persist_dir,
            telemetry,
        }
    }

    /// Compile `patterns` as a set and install it under `id`, atomically
    /// replacing any current version. The old version keeps serving its
    /// in-flight scans and is released when the last one drains.
    ///
    /// # Errors
    ///
    /// See [`RegistryError`]; a failed put leaves the current version
    /// untouched.
    pub fn put(
        &self,
        runtime: &Runtime,
        id: &str,
        patterns: Vec<String>,
    ) -> Result<PutOutcome, RegistryError> {
        validate_id(id)?;
        let (program, cache_hit) =
            runtime.compile_set_traced(&patterns, None).map_err(RegistryError::Compile)?;
        let artifact = EncodedProgram::from_program(&program).to_bytes();
        let version = content_version(&patterns, &artifact);
        // Persist before the swap: if the disk write fails, the old
        // version keeps serving and the store still matches it.
        if let Some(dir) = &self.persist_dir {
            persist(dir, id, &version, &patterns, &artifact)?;
        }
        let handle = Arc::new(SetHandle::new(version.clone(), patterns, program));
        let replaced = {
            let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
            entries.insert(id.to_owned(), handle)
        };
        let replaced_version = replaced.map(|old| {
            let version = old.version().to_owned();
            self.park_retired(old);
            version
        });
        self.telemetry.counter_add("registry.puts", 1);
        if replaced_version.is_some() {
            self.telemetry.counter_add("registry.swaps", 1);
        }
        self.sweep();
        Ok(PutOutcome { version, replaced: replaced_version, cache_hit })
    }

    /// Pin the current version of `id` for one scan. The lookup and the
    /// pin are atomic with respect to swaps (same lock), so the caller
    /// always holds a version that was current at admission.
    pub fn pin(&self, id: &str) -> Option<PinGuard> {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let guard = entries.get(id).map(SetHandle::pin);
        drop(entries);
        if guard.is_some() {
            self.telemetry.counter_add("registry.scans", 1);
        }
        guard
    }

    /// Describe the current version of `id`.
    pub fn get(&self, id: &str) -> Option<RulesetInfo> {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        entries.get(id).map(|handle| RulesetInfo {
            id: id.to_owned(),
            version: handle.version().to_owned(),
            patterns: handle.patterns().to_vec(),
            pins: handle.pins(),
        })
    }

    /// Describe every ruleset, sorted by id.
    pub fn list(&self) -> Vec<RulesetInfo> {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let mut infos: Vec<RulesetInfo> = entries
            .iter()
            .map(|(id, handle)| RulesetInfo {
                id: id.clone(),
                version: handle.version().to_owned(),
                patterns: handle.patterns().to_vec(),
                pins: handle.pins(),
            })
            .collect();
        drop(entries);
        infos.sort_by(|a, b| a.id.cmp(&b.id));
        infos
    }

    /// Remove `id`: the current version is retired (in-flight scans
    /// drain on it) and its persisted artifact deleted.
    ///
    /// # Errors
    ///
    /// [`RegistryError::NotFound`] when no such ruleset exists; the
    /// artifact unlink is best-effort (the registry entry wins).
    pub fn delete(&self, id: &str) -> Result<String, RegistryError> {
        let removed = {
            let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
            entries.remove(id)
        };
        let Some(handle) = removed else {
            return Err(RegistryError::NotFound(id.to_owned()));
        };
        let version = handle.version().to_owned();
        self.park_retired(handle);
        if let Some(dir) = &self.persist_dir {
            let _ = std::fs::remove_file(dir.join(format!("{id}.ruleset")));
        }
        self.telemetry.counter_add("registry.deletes", 1);
        self.sweep();
        Ok(version)
    }

    /// Restore every `*.ruleset` artifact in the persist directory,
    /// verifying each content hash. Returns the ids loaded (sorted).
    /// A registry with no persist directory loads nothing.
    ///
    /// # Errors
    ///
    /// The first I/O, decode, or hash-mismatch failure; rulesets loaded
    /// before the failure stay installed.
    pub fn load_dir(&self, runtime: &Runtime) -> Result<Vec<String>, RegistryError> {
        let Some(dir) = self.persist_dir.clone() else {
            return Ok(Vec::new());
        };
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "ruleset"))
            .collect();
        paths.sort();
        let mut loaded = Vec::with_capacity(paths.len());
        for path in paths {
            let id =
                path.file_stem().map(|s| s.to_string_lossy().into_owned()).ok_or_else(|| {
                    RegistryError::Corrupt(format!("{}: no file stem", path.display()))
                })?;
            validate_id(&id)?;
            let (version, patterns, program) = load_artifact(&path)?;
            // Warm the runtime cache so the first scan after a restart
            // hits it (and both backends share the entry), then install
            // the *persisted* program — the artifact is the contract.
            let _ = runtime.compile_set_traced(&patterns, None);
            let handle = Arc::new(SetHandle::new(version, patterns, Arc::new(program)));
            let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(old) = entries.insert(id.clone(), handle) {
                drop(entries);
                self.park_retired(old);
            }
            self.telemetry.counter_add("registry.loads", 1);
            loaded.push(id);
        }
        self.sweep();
        Ok(loaded)
    }

    /// Release retired versions whose last pin has dropped, refreshing
    /// the `registry.*` gauges. Called on every mutation; also safe to
    /// call periodically.
    pub fn sweep(&self) {
        let released = {
            let mut retired = self.retired.lock().unwrap_or_else(|p| p.into_inner());
            let before = retired.len();
            retired.retain(|handle| !handle.is_drained());
            let after = retired.len();
            self.telemetry.gauge_set("registry.versions_retired", after as f64);
            before - after
        };
        if released > 0 {
            self.telemetry.counter_add("registry.versions_released", released as u64);
        }
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        self.telemetry.gauge_set("registry.rulesets", entries.len() as f64);
    }

    /// Retired versions still awaiting their last pin (for tests and
    /// `GET /metrics` cross-checks).
    pub fn retired_len(&self) -> usize {
        self.retired.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    fn park_retired(&self, handle: Arc<SetHandle>) {
        handle.retire();
        self.retired.lock().unwrap_or_else(|p| p.into_inner()).push(handle);
    }
}

/// Ids become file stems, so the alphabet is conservative.
fn validate_id(id: &str) -> Result<(), RegistryError> {
    let ok = !id.is_empty()
        && id.len() <= MAX_RULESET_ID
        && id.chars().all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
        && !id.starts_with('.');
    if ok {
        Ok(())
    } else {
        Err(RegistryError::InvalidId(id.to_owned()))
    }
}

/// The content-hash version: FNV-1a 64 over the length-prefixed pattern
/// list and the encoded program artifact, as 16 lowercase hex chars.
/// Deterministic across processes (no hasher randomization), so the
/// same patterns always produce the same version tag.
pub fn content_version(patterns: &[String], artifact: &[u8]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    eat(&(patterns.len() as u64).to_le_bytes());
    for pattern in patterns {
        eat(&(pattern.len() as u64).to_le_bytes());
        eat(pattern.as_bytes());
    }
    eat(&(artifact.len() as u64).to_le_bytes());
    eat(artifact);
    format!("{hash:016x}")
}

/// Write the `{id}.ruleset` envelope via write-then-rename.
fn persist(
    dir: &Path,
    id: &str,
    version: &str,
    patterns: &[String],
    artifact: &[u8],
) -> Result<(), RegistryError> {
    std::fs::create_dir_all(dir)?;
    let mut text = String::new();
    text.push_str(MAGIC);
    text.push('\n');
    text.push_str(&format!("version = {version}\n"));
    text.push_str(&format!("patterns = {}\n", patterns.len()));
    for pattern in patterns {
        text.push_str(&to_hex(pattern.as_bytes()));
        text.push('\n');
    }
    text.push_str(&format!("artifact = {}\n", to_hex(artifact)));
    let tmp = dir.join(format!(".{id}.ruleset.tmp"));
    let path = dir.join(format!("{id}.ruleset"));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Parse and verify one persisted artifact.
fn load_artifact(path: &Path) -> Result<(String, Vec<String>, Program), RegistryError> {
    let text = std::fs::read_to_string(path)?;
    let name = path.display();
    let corrupt = |m: String| RegistryError::Corrupt(format!("{name}: {m}"));
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(corrupt(format!("missing `{MAGIC}` header")));
    }
    let version = lines
        .next()
        .and_then(|l| l.strip_prefix("version = "))
        .ok_or_else(|| corrupt("missing `version =` line".to_owned()))?
        .to_owned();
    let count: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("patterns = "))
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| corrupt("missing or bad `patterns =` line".to_owned()))?;
    let mut patterns = Vec::with_capacity(count);
    for i in 0..count {
        let hex = lines.next().ok_or_else(|| corrupt(format!("missing pattern line {i}")))?;
        let bytes = from_hex(hex).map_err(|e| corrupt(format!("pattern {i}: {e}")))?;
        patterns.push(
            String::from_utf8(bytes).map_err(|_| corrupt(format!("pattern {i} is not UTF-8")))?,
        );
    }
    let artifact = lines
        .next()
        .and_then(|l| l.strip_prefix("artifact = "))
        .ok_or_else(|| corrupt("missing `artifact =` line".to_owned()))?;
    let artifact = from_hex(artifact).map_err(corrupt)?;
    if content_version(&patterns, &artifact) != version {
        return Err(corrupt(format!("content hash mismatch for version {version}")));
    }
    let program = EncodedProgram::from_bytes(&artifact)
        .and_then(|encoded| encoded.decode())
        .map_err(|e| corrupt(format!("decoding program artifact: {e:?}")))?;
    Ok((version, patterns, program))
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(hex: &str) -> Result<Vec<u8>, String> {
    if !hex.len().is_multiple_of(2) {
        return Err("odd-length hex".to_owned());
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&hex[i..i + 2], 16)
                .map_err(|_| format!("bad hex byte {:?}", &hex[i..i + 2]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cicero_runtime::RuntimeOptions;

    fn runtime() -> Runtime {
        Runtime::new(RuntimeOptions { jobs: 1, ..RuntimeOptions::default() })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cicero-registry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_delete_lifecycle_with_content_versions() {
        let registry = RulesetRegistry::new(None, Telemetry::new());
        let runtime = runtime();
        let patterns = vec!["GET /".to_owned(), "POST /".to_owned()];
        let put = registry.put(&runtime, "web", patterns.clone()).unwrap();
        assert_eq!(put.version.len(), 16);
        assert!(put.replaced.is_none());

        let info = registry.get("web").unwrap();
        assert_eq!(info.version, put.version);
        assert_eq!(info.patterns, patterns);
        assert_eq!(info.pins, 0);

        // Same patterns → same version (content hash, not a counter);
        // different patterns → different version, and the replaced tag
        // points at the old one.
        let same = registry.put(&runtime, "web", patterns.clone()).unwrap();
        assert_eq!(same.version, put.version);
        assert!(same.cache_hit, "second compile of the same set hits the runtime cache");
        let swapped = registry.put(&runtime, "web", vec!["DELETE /".to_owned()]).unwrap();
        assert_ne!(swapped.version, put.version);
        assert_eq!(swapped.replaced.as_deref(), Some(put.version.as_str()));

        assert_eq!(registry.list().len(), 1);
        let deleted = registry.delete("web").unwrap();
        assert_eq!(deleted, swapped.version);
        assert!(registry.get("web").is_none());
        assert!(matches!(registry.delete("web"), Err(RegistryError::NotFound(_))));
    }

    #[test]
    fn swap_retires_the_old_version_until_its_last_pin_drops() {
        let telemetry = Telemetry::new();
        let registry = RulesetRegistry::new(None, telemetry.clone());
        let runtime = runtime();
        registry.put(&runtime, "r", vec!["aa".to_owned()]).unwrap();
        let pinned = registry.pin("r").unwrap();
        let v1 = pinned.version().to_owned();

        registry.put(&runtime, "r", vec!["bb".to_owned()]).unwrap();
        // The in-flight scan still holds v1; the registry serves v2.
        assert_eq!(pinned.version(), v1);
        assert_ne!(registry.get("r").unwrap().version, v1);
        assert_eq!(registry.retired_len(), 1, "old version drains, not freed");
        assert_eq!(telemetry.counter("registry.versions_released"), 0);

        drop(pinned);
        registry.sweep();
        assert_eq!(registry.retired_len(), 0);
        assert_eq!(telemetry.counter("registry.versions_released"), 1);
        assert_eq!(telemetry.counter("registry.swaps"), 1);
    }

    #[test]
    fn pins_resolve_against_the_version_current_at_acquisition() {
        let registry = RulesetRegistry::new(None, Telemetry::new());
        let runtime = runtime();
        registry.put(&runtime, "r", vec!["ab|cd".to_owned()]).unwrap();
        let before = registry.pin("r").unwrap();
        registry.put(&runtime, "r", vec!["zz+".to_owned()]).unwrap();
        let after = registry.pin("r").unwrap();
        assert_ne!(before.version(), after.version());
        // Both programs stay runnable while pinned.
        assert!(cicero_isa::run_all(before.program(), b"xxcd").matched_ids == vec![0]);
        assert!(cicero_isa::run_all(after.program(), b"zzz").matched_ids == vec![0]);
        assert!(registry.pin("missing").is_none());
    }

    #[test]
    fn persisted_artifacts_reload_with_verified_hashes() {
        let dir = temp_dir("reload");
        let telemetry = Telemetry::new();
        let runtime = runtime();
        let patterns = vec!["GET /".to_owned(), "POST /".to_owned()];
        let version = {
            let registry = RulesetRegistry::new(Some(dir.clone()), telemetry.clone());
            registry.put(&runtime, "web", patterns.clone()).unwrap().version
        };
        // A fresh registry (fresh process, in spirit) restores it.
        let registry = RulesetRegistry::new(Some(dir.clone()), telemetry.clone());
        let loaded = registry.load_dir(&runtime).unwrap();
        assert_eq!(loaded, vec!["web".to_owned()]);
        let info = registry.get("web").unwrap();
        assert_eq!(info.version, version);
        assert_eq!(info.patterns, patterns);
        // The restored program actually matches.
        let pinned = registry.pin("web").unwrap();
        assert_eq!(cicero_isa::run_all(pinned.program(), b"GET /x").matched_ids, vec![0]);
        drop(pinned);
        // Delete unlinks the artifact.
        registry.delete("web").unwrap();
        let empty = RulesetRegistry::new(Some(dir.clone()), telemetry);
        assert!(empty.load_dir(&runtime).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_artifacts_fail_the_hash_check() {
        let dir = temp_dir("tamper");
        let runtime = runtime();
        let registry = RulesetRegistry::new(Some(dir.clone()), Telemetry::new());
        registry.put(&runtime, "r", vec!["abc".to_owned()]).unwrap();
        let path = dir.join("r.ruleset");
        let mut text = std::fs::read_to_string(&path).unwrap();
        // Flip one artifact nibble.
        let at = text.rfind("artifact = ").unwrap() + "artifact = ".len();
        let original = text.as_bytes()[at];
        let flipped = if original == b'0' { '1' } else { '0' };
        text.replace_range(at..at + 1, &flipped.to_string());
        std::fs::write(&path, text).unwrap();

        let fresh = RulesetRegistry::new(Some(dir.clone()), Telemetry::new());
        let err = fresh.load_dir(&runtime).unwrap_err();
        assert!(matches!(err, RegistryError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("hash mismatch"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_ids_are_rejected_before_compilation() {
        let registry = RulesetRegistry::new(None, Telemetry::new());
        let runtime = runtime();
        for bad in ["", "a/b", "..", ".hidden", "spaced id", &"x".repeat(MAX_RULESET_ID + 1)] {
            let err = registry.put(&runtime, bad, vec!["a".to_owned()]).unwrap_err();
            assert!(matches!(err, RegistryError::InvalidId(_)), "{bad:?}: {err}");
        }
        // Compile failures leave no entry behind.
        let err = registry.put(&runtime, "ok", vec!["(".to_owned()]).unwrap_err();
        assert!(matches!(err, RegistryError::Compile(_)), "{err}");
        assert!(registry.get("ok").is_none());
    }

    #[test]
    fn content_version_is_stable_and_input_sensitive() {
        let a = content_version(&["ab".to_owned()], &[1, 2, 3]);
        assert_eq!(a, content_version(&["ab".to_owned()], &[1, 2, 3]));
        assert_ne!(a, content_version(&["ab".to_owned()], &[1, 2, 4]));
        assert_ne!(a, content_version(&["a".to_owned(), "b".to_owned()], &[1, 2, 3]));
        // Length prefixing: ["ab"] and ["a","b"] cannot collide by
        // concatenation.
        assert_ne!(
            content_version(&["ab".to_owned()], &[]),
            content_version(&["a".to_owned(), "b".to_owned()], &[])
        );
    }
}
