//! Operations and regions — the IR's structural core.

use std::collections::BTreeMap;
use std::fmt;

use crate::attribute::Attribute;

/// A dialect-qualified operation name, e.g. `regex.match_char`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpName {
    full: String,
    dot: usize,
}

impl OpName {
    /// Create from a `dialect.op` string.
    ///
    /// # Panics
    ///
    /// Panics if `full` does not contain a `.` separating a non-empty
    /// dialect prefix from a non-empty op name — operation names are
    /// compile-time constants in every dialect crate, so this is a
    /// programming error, not input validation.
    pub fn new(full: impl Into<String>) -> OpName {
        let full = full.into();
        let dot = full
            .find('.')
            .unwrap_or_else(|| panic!("operation name `{full}` lacks a dialect prefix"));
        assert!(dot > 0 && dot + 1 < full.len(), "malformed operation name `{full}`");
        OpName { full, dot }
    }

    /// The full `dialect.op` name.
    pub fn as_str(&self) -> &str {
        &self.full
    }

    /// The dialect prefix.
    pub fn dialect(&self) -> &str {
        &self.full[..self.dot]
    }

    /// The op name within the dialect.
    pub fn op(&self) -> &str {
        &self.full[self.dot + 1..]
    }
}

impl fmt::Display for OpName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

/// A single-block region: an ordered list of operations.
///
/// Full MLIR regions hold CFG block lists; the two dialects in this project
/// are structural (see the crate docs), so a region is just a sequence.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Region {
    /// The operations in program order.
    pub ops: Vec<Operation>,
}

impl Region {
    /// An empty region.
    pub fn new() -> Region {
        Region::default()
    }

    /// A region holding the given operations.
    pub fn with_ops(ops: Vec<Operation>) -> Region {
        Region { ops }
    }

    /// Number of operations directly in this region.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the region holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<Operation> for Region {
    fn from_iter<I: IntoIterator<Item = Operation>>(iter: I) -> Region {
        Region { ops: iter.into_iter().collect() }
    }
}

/// An operation: a name, an attribute dictionary and nested regions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Operation {
    name: OpName,
    attrs: BTreeMap<String, Attribute>,
    regions: Vec<Region>,
}

impl Operation {
    /// Create an operation with no attributes or regions.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not of the form `dialect.op` (see
    /// [`OpName::new`]).
    pub fn new(name: impl Into<String>) -> Operation {
        Operation { name: OpName::new(name.into()), attrs: BTreeMap::new(), regions: Vec::new() }
    }

    /// The operation name.
    pub fn name(&self) -> &OpName {
        &self.name
    }

    /// Whether the op has the given full name.
    pub fn is(&self, full_name: &str) -> bool {
        self.name.as_str() == full_name
    }

    /// Set (or replace) an attribute. Returns `self` for chaining during
    /// construction.
    pub fn set_attr(&mut self, key: impl Into<String>, value: impl Into<Attribute>) -> &mut Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Builder-style attribute setter.
    pub fn with_attr(mut self, key: impl Into<String>, value: impl Into<Attribute>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Builder-style region appender.
    pub fn with_region(mut self, region: Region) -> Self {
        self.regions.push(region);
        self
    }

    /// Look up an attribute.
    pub fn attr(&self, key: &str) -> Option<&Attribute> {
        self.attrs.get(key)
    }

    /// Remove an attribute, returning it if present.
    pub fn take_attr(&mut self, key: &str) -> Option<Attribute> {
        self.attrs.remove(key)
    }

    /// The attribute dictionary, in sorted key order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &Attribute)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of attributes.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// The nested regions.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Mutable access to the nested regions.
    pub fn regions_mut(&mut self) -> &mut [Region] {
        &mut self.regions
    }

    /// Append a region.
    pub fn push_region(&mut self, region: Region) -> &mut Self {
        self.regions.push(region);
        self
    }

    /// The single region of a one-region op.
    ///
    /// # Panics
    ///
    /// Panics if the op does not have exactly one region; callers use this
    /// for ops whose definition fixes the region count.
    pub fn only_region(&self) -> &Region {
        assert_eq!(self.regions.len(), 1, "{} must have exactly one region", self.name);
        &self.regions[0]
    }

    /// Mutable variant of [`Operation::only_region`].
    ///
    /// # Panics
    ///
    /// Panics if the op does not have exactly one region.
    pub fn only_region_mut(&mut self) -> &mut Region {
        assert_eq!(self.regions.len(), 1, "{} must have exactly one region", self.name);
        &mut self.regions[0]
    }

    /// Total number of operations in this subtree, including `self`.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .regions
            .iter()
            .flat_map(|r| r.ops.iter())
            .map(Operation::subtree_size)
            .sum::<usize>()
    }

    /// Pre-order immutable walk over the subtree rooted at `self`.
    pub fn walk<F: FnMut(&Operation)>(&self, f: &mut F) {
        f(self);
        for region in &self.regions {
            for op in &region.ops {
                op.walk(f);
            }
        }
    }

    /// Post-order mutable walk over the subtree rooted at `self`.
    pub fn walk_mut<F: FnMut(&mut Operation)>(&mut self, f: &mut F) {
        for region in &mut self.regions {
            for op in &mut region.ops {
                op.walk_mut(f);
            }
        }
        f(self);
    }

    /// Render the textual IR form (see [`crate::printer`]).
    pub fn to_text(&self) -> String {
        crate::printer::print_op(self)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_name_parsing() {
        let n = OpName::new("regex.match_char");
        assert_eq!(n.dialect(), "regex");
        assert_eq!(n.op(), "match_char");
        assert_eq!(n.as_str(), "regex.match_char");
    }

    #[test]
    #[should_panic(expected = "lacks a dialect prefix")]
    fn op_name_requires_dialect() {
        let _ = OpName::new("orphan");
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn op_name_rejects_empty_parts() {
        let _ = OpName::new("regex.");
    }

    #[test]
    fn builder_chain() {
        let op = Operation::new("regex.quantifier")
            .with_attr("min", 1i64)
            .with_attr("max", -1i64)
            .with_region(Region::new());
        assert_eq!(op.attr("min").and_then(Attribute::as_int), Some(1));
        assert_eq!(op.attr("max").and_then(Attribute::as_int), Some(-1));
        assert_eq!(op.regions().len(), 1);
    }

    #[test]
    fn subtree_size_counts_nested_ops() {
        let leaf = Operation::new("regex.match_any_char");
        let piece = Operation::new("regex.piece")
            .with_region(Region::with_ops(vec![leaf.clone(), leaf.clone()]));
        let root = Operation::new("regex.root").with_region(Region::with_ops(vec![piece]));
        assert_eq!(root.subtree_size(), 4);
    }

    #[test]
    fn walk_visits_pre_order() {
        let leaf = Operation::new("t.leaf");
        let root = Operation::new("t.root").with_region(Region::with_ops(vec![leaf]));
        let mut names = Vec::new();
        root.walk(&mut |op| names.push(op.name().as_str().to_owned()));
        assert_eq!(names, vec!["t.root", "t.leaf"]);
    }

    #[test]
    fn walk_mut_visits_post_order() {
        let leaf = Operation::new("t.leaf");
        let mut root = Operation::new("t.root").with_region(Region::with_ops(vec![leaf]));
        let mut names = Vec::new();
        root.walk_mut(&mut |op| names.push(op.name().as_str().to_owned()));
        assert_eq!(names, vec!["t.leaf", "t.root"]);
    }

    #[test]
    #[should_panic(expected = "exactly one region")]
    fn only_region_guards_arity() {
        let op = Operation::new("t.noregions");
        let _ = op.only_region();
    }
}
