//! The registry axis: pattern *sets* round-tripped through the serving
//! registry (`cicero-server`), held to the oracle on both backends.
//!
//! The other axes check the compiler and engines directly; this one
//! checks the production *artifact path*: a set is compiled through the
//! shared [`Runtime`] cache, persisted by [`RulesetRegistry::put`] as a
//! content-hash-versioned artifact, reloaded by a *fresh* registry (a
//! restarted server), and only then executed. Two cells per case:
//!
//! * `registry/sim` — [`cicero_isa::run_all`] over the reloaded program
//!   must report exactly the set members the per-pattern oracles match;
//! * `registry/host` — the host-native lowering of the reloaded program
//!   must report the same id set.
//!
//! Anything lost or corrupted in encode → persist → verify → decode
//! shows up as a divergence here even though the in-memory matrix is
//! clean.

use std::path::{Path, PathBuf};

use cicero_hostexec::HostProgram;
use cicero_runtime::Runtime;
use cicero_server::registry::{RegistryError, RulesetRegistry};
use cicero_telemetry::Telemetry;
use regex_oracle::Oracle;

use crate::harness::{Divergence, Outcome};

/// The registry id every round-trip uses; cases are isolated by
/// directory, not by id.
const CASE_ID: &str = "case";

/// Run one pattern set and its inputs through the registry axis.
///
/// `dir` must be a directory this case may freely write artifacts into
/// (callers use a per-case temp dir); it is created if missing and left
/// in place for post-mortem inspection on divergence.
pub fn check_registry_case(
    runtime: &Runtime,
    dir: &Path,
    patterns: &[String],
    inputs: &[Vec<u8>],
) -> Outcome {
    let mut oracles = Vec::with_capacity(patterns.len());
    for pattern in patterns {
        match Oracle::new(pattern) {
            Ok(oracle) => oracles.push(oracle),
            Err(e) => return Outcome::Skip(format!("unparseable pattern {pattern:?}: {e}")),
        }
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        return Outcome::Skip(format!("cannot create case dir {}: {e}", dir.display()));
    }

    let writer = RulesetRegistry::new(Some(dir.to_path_buf()), Telemetry::new());
    let put = match writer.put(runtime, CASE_ID, patterns.to_vec()) {
        Ok(outcome) => outcome,
        // Sets the compiler rejects (anchored members, capacity, empty)
        // are not round-trippable; compile correctness itself is the
        // main matrix's job, this axis owns persist/reload fidelity.
        Err(RegistryError::Compile(e)) => {
            return Outcome::Skip(format!("set does not compile: {e}"))
        }
        Err(e) => {
            return Outcome::Diverged(Divergence {
                cell: "registry/put".to_owned(),
                detail: format!("round-trip write failed on a compilable set: {e}"),
            })
        }
    };

    // A fresh registry over the same directory models a server restart:
    // the artifact must reload (content hash verified) to the exact
    // version the put reported.
    let reader = RulesetRegistry::new(Some(dir.to_path_buf()), Telemetry::new());
    if let Err(e) = reader.load_dir(runtime) {
        return Outcome::Diverged(Divergence {
            cell: "registry/load".to_owned(),
            detail: format!("persisted artifact failed to reload: {e}"),
        });
    }
    let Some(pin) = reader.pin(CASE_ID) else {
        return Outcome::Diverged(Divergence {
            cell: "registry/load".to_owned(),
            detail: "ruleset missing after reload".to_owned(),
        });
    };
    if pin.version() != put.version {
        return Outcome::Diverged(Divergence {
            cell: "registry/version".to_owned(),
            detail: format!(
                "reloaded version {} != written version {}",
                pin.version(),
                put.version
            ),
        });
    }

    let program = pin.program();
    let host = HostProgram::compile(program);
    for input in inputs {
        let expected: Vec<u16> = oracles
            .iter()
            .enumerate()
            .filter(|(_, oracle)| oracle.is_match(input))
            .map(|(id, _)| id as u16)
            .collect();
        let interp = cicero_isa::run_all(program, input);
        if interp.matched_ids != expected {
            return Outcome::Diverged(Divergence {
                cell: "registry/sim".to_owned(),
                detail: format!(
                    "reloaded program matched ids {:?} on {input:?}, oracle says {expected:?}",
                    interp.matched_ids
                ),
            });
        }
        let host_all = host.run_all(input);
        if host_all.matched_ids != expected {
            return Outcome::Diverged(Divergence {
                cell: format!("registry/host/{}", host.engine_kind()),
                detail: format!(
                    "host engine matched ids {:?} on {input:?}, oracle says {expected:?}",
                    host_all.matched_ids
                ),
            });
        }
    }
    Outcome::Pass
}

/// A scratch directory for one registry case, unique per process and
/// case name.
pub fn case_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cicero-difftest-registry-{}-{name}", std::process::id()))
}

/// Corpus encoding for a pattern *set*: members are newline-joined in
/// the single `pattern` field (the generator grammar never emits a
/// literal newline, and `\n` in a pattern spells one via the escape).
pub fn split_set(pattern: &str) -> Vec<String> {
    pattern.split('\n').map(str::to_owned).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::Generator;
    use cicero_runtime::RuntimeOptions;

    fn runtime() -> Runtime {
        Runtime::new(RuntimeOptions { jobs: 1, ..RuntimeOptions::default() })
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = case_dir(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn known_sets_pass_the_registry_axis() {
        let runtime = runtime();
        let sets: [&[&str]; 3] =
            [&["ab|cd", "x(a?|a*)y", "th(is|at)"], &["(a*)*b", "[^ab]c"], &["a{2,4}b?"]];
        for (i, set) in sets.iter().enumerate() {
            let patterns: Vec<String> = set.iter().map(|s| (*s).to_owned()).collect();
            let inputs: Vec<Vec<u8>> = vec![
                b"".to_vec(),
                b"ab".to_vec(),
                b"xxaayy".to_vec(),
                b"zcz".to_vec(),
                b"thisthat".to_vec(),
                vec![b'a'; 40],
            ];
            let dir = scratch(&format!("known-{i}"));
            let outcome = check_registry_case(&runtime, &dir, &patterns, &inputs);
            assert_eq!(outcome, Outcome::Pass, "set {set:?}: {outcome:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// Seeded fuzz over generator-drawn sets: every round-trip must hold
    /// the `registry/{sim,host}` cells to the oracle.
    #[test]
    fn random_sets_round_trip_clean() {
        let runtime = runtime();
        let mut generator = Generator::new(0xc1c3_2024);
        for iteration in 0..12 {
            let mut patterns = Vec::new();
            let mut inputs = Vec::new();
            for _ in 0..=(iteration % 3) {
                let (pattern, ast) = generator.pattern();
                inputs.extend(generator.inputs(&ast));
                patterns.push(pattern);
            }
            let dir = scratch(&format!("fuzz-{iteration}"));
            let outcome = check_registry_case(&runtime, &dir, &patterns, &inputs);
            assert!(!outcome.diverged(), "iteration {iteration}, set {patterns:?}: {outcome:?}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    /// A tampered artifact must fail the reload, and the axis must
    /// attribute that to the registry, not the engines.
    #[test]
    fn a_corrupted_artifact_is_a_registry_divergence() {
        let runtime = runtime();
        let dir = scratch("tampered");
        std::fs::create_dir_all(&dir).unwrap();
        // Tamper a *sibling* artifact: the case's own put would rewrite
        // its file, but the reload walks the whole directory.
        let writer = RulesetRegistry::new(Some(dir.clone()), Telemetry::new());
        writer.put(&runtime, "other", vec!["cd".to_owned()]).unwrap();
        let path = dir.join("other.ruleset");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.truncate(text.len() - 3);
        std::fs::write(&path, text).unwrap();
        let outcome = check_registry_case(&runtime, &dir, &["ab".to_owned()], &[b"ab".to_vec()]);
        match outcome {
            Outcome::Diverged(d) => assert!(d.cell.starts_with("registry/"), "{d}"),
            other => panic!("corruption not caught: {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn split_set_round_trips_newline_joined_members() {
        assert_eq!(split_set("ab"), vec!["ab"]);
        assert_eq!(split_set("ab\ncd|ef"), vec!["ab", "cd|ef"]);
    }
}
