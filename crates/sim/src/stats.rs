//! Execution reports.

/// The result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExecReport {
    /// Total cycles until acceptance, exhaustion, or the cycle cap.
    pub cycles: u64,
    /// Whether the program accepted.
    pub accepted: bool,
    /// Input position at which acceptance fired (characters consumed).
    pub match_position: Option<usize>,
    /// RE identifier reported by `AcceptPartialId` (multi-matching sets).
    pub matched_id: Option<u16>,
    /// Instructions executed across all cores.
    pub instructions: u64,
    /// Instruction-cache hits across all cores.
    pub icache_hits: u64,
    /// Instruction-cache misses across all cores.
    pub icache_misses: u64,
    /// Extra cycles cores spent waiting on instruction-memory fills
    /// (including port contention).
    pub memory_stall_cycles: u64,
    /// Cycles cores spent blocked on the lockstep window.
    pub window_stall_cycles: u64,
    /// Threads moved across engines by the ring load balancer.
    pub cross_engine_transfers: u64,
    /// Threads dropped by the FIFO duplicate filter.
    pub deduplicated: u64,
    /// Peak number of live threads.
    pub peak_threads: usize,
    /// True if the run aborted at the cycle cap (pathological input).
    pub hit_cycle_limit: bool,
}

impl ExecReport {
    /// Execution time in microseconds at the given clock.
    ///
    /// A non-positive (or non-finite) clock is meaningless; it yields
    /// `NaN` rather than dividing by zero, and the telemetry layer drops
    /// non-finite observations, so a bad clock can never masquerade as a
    /// real measurement.
    pub fn time_us(&self, clock_mhz: f64) -> f64 {
        if clock_mhz > 0.0 {
            self.cycles as f64 / clock_mhz
        } else {
            f64::NAN
        }
    }

    /// Energy in W·µs given a power figure. `NaN` when the clock is
    /// non-positive (see [`ExecReport::time_us`]).
    pub fn energy_wus(&self, clock_mhz: f64, watts: f64) -> f64 {
        self.time_us(clock_mhz) * watts
    }

    /// Instruction-cache hit rate in `[0, 1]` (1.0 when no accesses).
    pub fn icache_hit_rate(&self) -> f64 {
        let total = self.icache_hits + self.icache_misses;
        if total == 0 {
            1.0
        } else {
            self.icache_hits as f64 / total as f64
        }
    }

    /// Fold this run into a telemetry collector: `sim.*` histograms for
    /// the distribution-shaped quantities (cycles, peak threads, i-cache
    /// hit rate, the stall-cycle breakdown) and counters for the monotone
    /// ones. Called once per [`Machine::run`](crate::Machine::run) when a
    /// collector is attached, so repeated runs build up distributions.
    pub fn record_into(&self, telemetry: &cicero_telemetry::Telemetry) {
        telemetry.counter_add("sim.runs", 1);
        telemetry.counter_add("sim.instructions", self.instructions);
        telemetry.counter_add("sim.icache_hits", self.icache_hits);
        telemetry.counter_add("sim.icache_misses", self.icache_misses);
        telemetry.counter_add("sim.cross_engine_transfers", self.cross_engine_transfers);
        telemetry.counter_add("sim.deduplicated", self.deduplicated);
        if self.accepted {
            telemetry.counter_add("sim.matches", 1);
        }
        if self.hit_cycle_limit {
            telemetry.counter_add("sim.cycle_limit_hits", 1);
        }
        telemetry.observe("sim.cycles", self.cycles as f64);
        telemetry.observe("sim.peak_threads", self.peak_threads as f64);
        telemetry.observe("sim.memory_stall_cycles", self.memory_stall_cycles as f64);
        telemetry.observe("sim.window_stall_cycles", self.window_stall_cycles as f64);
        telemetry.observe_with(
            "sim.icache_hit_rate",
            self.icache_hit_rate(),
            &[0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0],
        );
    }

    /// Accumulate another run's counters (used by benchmark drivers to
    /// aggregate over many REs/chunks). Verdict fields keep `self`'s.
    pub fn accumulate(&mut self, other: &ExecReport) {
        self.cycles += other.cycles;
        self.instructions += other.instructions;
        self.icache_hits += other.icache_hits;
        self.icache_misses += other.icache_misses;
        self.memory_stall_cycles += other.memory_stall_cycles;
        self.window_stall_cycles += other.window_stall_cycles;
        self.cross_engine_transfers += other.cross_engine_transfers;
        self.deduplicated += other.deduplicated;
        self.peak_threads = self.peak_threads.max(other.peak_threads);
        self.hit_cycle_limit |= other.hit_cycle_limit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_and_energy() {
        let r = ExecReport { cycles: 1500, ..ExecReport::default() };
        assert!((r.time_us(150.0) - 10.0).abs() < 1e-9);
        assert!((r.energy_wus(150.0, 2.4) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn non_positive_clock_yields_nan_instead_of_dividing_by_zero() {
        let r = ExecReport { cycles: 1500, ..ExecReport::default() };
        assert!(r.time_us(0.0).is_nan());
        assert!(r.time_us(-150.0).is_nan());
        assert!(r.energy_wus(0.0, 2.4).is_nan());
        assert!(r.time_us(f64::NAN).is_nan());
    }

    #[test]
    fn record_into_builds_histograms_and_counters() {
        let telemetry = cicero_telemetry::Telemetry::new();
        let a = ExecReport {
            cycles: 100,
            accepted: true,
            instructions: 40,
            icache_hits: 30,
            icache_misses: 10,
            peak_threads: 6,
            ..ExecReport::default()
        };
        let b = ExecReport { cycles: 300, ..ExecReport::default() };
        a.record_into(&telemetry);
        b.record_into(&telemetry);
        assert_eq!(telemetry.counter("sim.runs"), 2);
        assert_eq!(telemetry.counter("sim.matches"), 1);
        assert_eq!(telemetry.counter("sim.instructions"), 40);
        let cycles = telemetry.histogram("sim.cycles").unwrap();
        assert_eq!(cycles.count, 2);
        assert_eq!(cycles.sum, 400.0);
        let hit_rate = telemetry.histogram("sim.icache_hit_rate").unwrap();
        assert_eq!(hit_rate.count, 2);
        assert_eq!(hit_rate.min, 0.75);
        assert_eq!(hit_rate.max, 1.0);
    }

    #[test]
    fn hit_rate() {
        let r = ExecReport { icache_hits: 3, icache_misses: 1, ..ExecReport::default() };
        assert!((r.icache_hit_rate() - 0.75).abs() < 1e-9);
        assert_eq!(ExecReport::default().icache_hit_rate(), 1.0);
    }

    #[test]
    fn accumulate_sums_counters() {
        let mut a = ExecReport { cycles: 10, peak_threads: 4, ..ExecReport::default() };
        let b = ExecReport { cycles: 7, peak_threads: 9, instructions: 3, ..ExecReport::default() };
        a.accumulate(&b);
        assert_eq!(a.cycles, 17);
        assert_eq!(a.instructions, 3);
        assert_eq!(a.peak_threads, 9);
    }
}
