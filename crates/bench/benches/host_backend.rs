//! **Host backend** — single-thread scanning throughput of the
//! bit-parallel host-native engine on the Table-2 suites, exported to
//! `BENCH_host.json`.
//!
//! The host-backend tentpole lowers the `cicero` ISA to a bit-parallel
//! Thompson NFA (u64/u128 masks, byte-class-compressed lazy-DFA
//! fallback, memchr-style literal prefilter). This bench pins the claim
//! that the lowering is worth serving from: each suite's patterns are
//! compiled once, lowered once, and scanned single-threaded over a long
//! haystack built from the suite's own 500-byte chunks. Throughput is
//! whole-haystack `run_all` — the engine cannot stop at the first
//! accept, so every reported byte was actually stepped or prefiltered.
//!
//! The run **fails (nonzero exit) if PROTOMATA or BRILL falls below the
//! floor** (default 100 MB/s, override via `CICERO_HOST_MBPS_FLOOR`) —
//! the acceptance bar of the host-backend issue. The alternate suites
//! (PROTOMATA4/BRILL4) are reported but not gated: their 4-way
//! alternations select wider engines whose throughput is a different
//! trade-off, tracked by the JSON rather than asserted.
//!
//! Scale via `CICERO_BENCH_SCALE` (quick/default/full); output path via
//! `CICERO_BENCH_HOST` (empty to disable, default `BENCH_host.json`).

use std::fmt::Write as _;
use std::time::Instant;

use cicero_bench::{banner, f2, suites, Scale, Table};
use cicero_runtime::HostProgram;

/// Haystack size per suite: the suite's chunks are concatenated and
/// tiled up to this many bytes, so per-call overhead is amortized and
/// the prefilter sees realistic skip distances.
const HAYSTACK_BYTES: usize = 1 << 19; // 512 KiB

/// Suites whose throughput is gated by the floor.
const GATED: &[&str] = &["PROTOMATA", "BRILL"];

struct Row {
    suite: &'static str,
    patterns: usize,
    mbps: f64,
    matched: usize,
    engines: String,
    prefiltered: usize,
    gated: bool,
}

/// Tile the suite's chunks into one long haystack.
fn haystack(chunks: &[Vec<u8>]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HAYSTACK_BYTES);
    while bytes.len() < HAYSTACK_BYTES {
        for chunk in chunks {
            bytes.extend_from_slice(chunk);
            if bytes.len() >= HAYSTACK_BYTES {
                break;
            }
        }
    }
    bytes.truncate(HAYSTACK_BYTES);
    bytes
}

fn main() {
    let scale = Scale::from_env();
    banner("Host", "bit-parallel host engine single-thread throughput", scale);
    let floor_mbps: f64 =
        std::env::var("CICERO_HOST_MBPS_FLOOR").ok().and_then(|v| v.parse().ok()).unwrap_or(100.0);

    let mut rows: Vec<Row> = Vec::new();
    for bench in suites(scale) {
        let input = haystack(&bench.chunks);
        // Compile + lower outside the timed region: serving reuses both
        // through the runtime's program and lowering caches.
        let hosts: Vec<HostProgram> = bench
            .patterns
            .iter()
            .map(|p| {
                let program = cicero_core::compile(p).expect("suite compiles").into_program();
                HostProgram::compile(&program)
            })
            .collect();

        // One warm-up pass populates lazy-DFA memo tables the way a
        // long-lived server process would.
        for host in &hosts {
            std::hint::black_box(host.run_all(&input));
        }
        let start = Instant::now();
        let mut matched = 0usize;
        for host in &hosts {
            let outcome = host.run_all(&input);
            matched += usize::from(outcome.accepted);
            std::hint::black_box(&outcome);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let total_bytes = hosts.len() * input.len();
        let mbps = total_bytes as f64 / elapsed / 1e6;

        // Engine-tier census: which lowering each pattern selected.
        let mut tiers: Vec<(String, usize)> = Vec::new();
        let mut prefiltered = 0usize;
        for host in &hosts {
            let kind = host.engine_kind().to_string();
            match tiers.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => tiers.push((kind, 1)),
            }
            prefiltered += usize::from(host.prefilter_stop_bytes().is_some());
        }
        tiers.sort();
        let engines =
            tiers.iter().map(|(kind, n)| format!("{n}x {kind}")).collect::<Vec<_>>().join(", ");

        rows.push(Row {
            suite: bench.name,
            patterns: hosts.len(),
            mbps,
            matched,
            engines,
            prefiltered,
            gated: GATED.contains(&bench.name),
        });
    }

    let mut table =
        Table::new(vec!["Suite", "Patterns", "MB/s", "Matched", "Prefiltered", "Engines"]);
    for row in &rows {
        table.row(vec![
            row.suite.to_owned(),
            row.patterns.to_string(),
            f2(row.mbps),
            row.matched.to_string(),
            row.prefiltered.to_string(),
            row.engines.clone(),
        ]);
    }
    table.print();
    println!(
        "\n  floor      : {} MB/s single-thread on {} (CICERO_HOST_MBPS_FLOOR)",
        f2(floor_mbps),
        GATED.join(", ")
    );

    let path = std::env::var("CICERO_BENCH_HOST").unwrap_or_else(|_| "BENCH_host.json".to_owned());
    if !path.is_empty() {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"host_backend\",\n");
        let _ = writeln!(json, "  \"haystack_bytes\": {HAYSTACK_BYTES},");
        json.push_str(
            "  \"notes\": \"single-thread whole-haystack run_all throughput of the bit-parallel \
             host engine, per suite; compile and lowering are outside the timed region (the \
             runtime caches both); the run exits nonzero when a gated suite falls below \
             floor_mbps\",\n",
        );
        let _ = writeln!(json, "  \"floor_mbps\": {floor_mbps:.1},");
        json.push_str("  \"rows\": [\n");
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(
                json,
                "    {{\"suite\": \"{}\", \"patterns\": {}, \"throughput_mbps\": {:.3}, \
                 \"matched_patterns\": {}, \"prefiltered_patterns\": {}, \"engines\": \"{}\", \
                 \"gated\": {}}}",
                row.suite,
                row.patterns,
                row.mbps,
                row.matched,
                row.prefiltered,
                row.engines,
                row.gated,
            );
            json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
        }
        json.push_str("  ]\n}\n");
        match std::fs::write(&path, json) {
            Ok(()) => println!("\n  results written to {path}"),
            Err(e) => eprintln!("  warning: could not write {path}: {e}"),
        }
    }

    let mut failed = false;
    for row in rows.iter().filter(|r| r.gated) {
        if row.mbps < floor_mbps {
            eprintln!(
                "  FAIL: {} at {:.2} MB/s is below the {floor_mbps} MB/s single-thread floor",
                row.suite, row.mbps
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("  floor      : PASS");
}
