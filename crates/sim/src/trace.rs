//! Pipeline tracing — the machinery behind Figure-4-style execution
//! tables.
//!
//! When enabled ([`crate::Machine::run_traced`]), every pipeline stage
//! event is recorded: fetches into S1, executions in S2 (with their
//! outcome), and second split pushes in S3. [`render_trace`] lays the
//! events out as the paper's Figure 4 does — one row per (engine, core,
//! stage), one column per cycle, each cell showing the PC being handled.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What happened in a traced pipeline slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceNote {
    /// A thread was popped from a FIFO into S1.
    Fetched,
    /// A single successor re-entered the pipeline directly (back-to-back
    /// execution; drawn in Figure 4 as consecutive S2 cells).
    Forwarded,
    /// A matching instruction consumed its character (`a ✓`).
    Matched,
    /// A matching instruction failed; the thread died (`a ✗`).
    Killed,
    /// A jump redirected the thread (`a -> b`).
    Jumped(u16),
    /// A split's first target continued; the second waits in S3.
    SplitTo(u16),
    /// S3 pushed the split's second target (`a -> b` on the S3 row).
    SecondTarget(u16),
    /// Execution accepted here.
    Accepted,
    /// The successor was window-blocked and the thread re-queued.
    Requeued,
}

/// One pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event happened.
    pub cycle: u64,
    /// Engine index.
    pub engine: usize,
    /// Core index within the engine.
    pub core: usize,
    /// Pipeline stage: 1 = fetch, 2 = execute, 3 = second split push.
    pub stage: u8,
    /// Program counter of the thread involved.
    pub pc: u16,
    /// Input position (character index) of the thread.
    pub pos: usize,
    /// The outcome.
    pub note: TraceNote,
}

impl TraceEvent {
    fn cell(&self) -> String {
        match self.note {
            TraceNote::Fetched => format!("{}", self.pc),
            TraceNote::Forwarded => format!("{}*", self.pc),
            TraceNote::Matched => format!("{}+", self.pc),
            TraceNote::Killed => format!("{}x", self.pc),
            TraceNote::Jumped(t) => format!("{}>{}", self.pc, t),
            TraceNote::SplitTo(t) => format!("{}s{}", self.pc, t),
            TraceNote::SecondTarget(t) => format!("{}>{}", self.pc, t),
            TraceNote::Accepted => format!("{}!", self.pc),
            TraceNote::Requeued => format!("{}w", self.pc),
        }
    }
}

/// Render events as a Figure-4-style table covering `cycles` columns.
///
/// Cell legend: `7` fetched · `7*` forwarded · `7+` matched · `7x` killed
/// · `7>3` jump/second split target · `7s3` split (first target) · `7!`
/// accepted · `7w` window-blocked.
pub fn render_trace(events: &[TraceEvent], cycles: std::ops::Range<u64>) -> String {
    // Group: (engine, core, stage) -> cycle -> cell.
    let mut rows: BTreeMap<(usize, usize, u8), BTreeMap<u64, String>> = BTreeMap::new();
    for event in events {
        if !cycles.contains(&event.cycle) {
            continue;
        }
        rows.entry((event.engine, event.core, event.stage))
            .or_default()
            .insert(event.cycle, event.cell());
    }
    let width =
        rows.values().flat_map(|cells| cells.values()).map(String::len).max().unwrap_or(1).max(3);
    let mut out = String::new();
    let _ = write!(out, "{:<18}", "cycle");
    for cycle in cycles.clone() {
        let _ = write!(out, " {cycle:>width$}");
    }
    let _ = writeln!(out);
    let mut previous_key: Option<(usize, usize)> = None;
    for ((engine, core, stage), cells) in &rows {
        if previous_key != Some((*engine, *core)) {
            let _ = writeln!(out, "ENGINE {engine} CORE {core}");
            previous_key = Some((*engine, *core));
        }
        let _ = write!(out, "  S{stage:<15}");
        for cycle in cycles.clone() {
            match cells.get(&cycle) {
                Some(cell) => {
                    let _ = write!(out, " {cell:>width$}");
                }
                None => {
                    let _ = write!(out, " {:>width$}", ".");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchConfig, Machine};
    use cicero_isa::{Instruction::*, Program};

    fn figure4_program() -> Program {
        // The program of Figure 4: `.*(ab)+`-ish with PCs as in the paper:
        // 0 split(3); 1 matchany; 2 jmp 0; 3 match a; 4 match b;
        // 5 split(10)... shortened to fit: acceptance at the end.
        Program::from_instructions(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Match(b'a'),
            Match(b'b'),
            Split(7),
            Jump(3),
            AcceptPartial,
        ])
        .unwrap()
    }

    #[test]
    fn traces_record_all_stages() {
        let program = figure4_program();
        let mut machine = Machine::new(&program, ArchConfig::old_organization(1));
        let (report, events) = machine.run_traced(b"abab");
        assert!(report.accepted);
        assert!(events.iter().any(|e| e.stage == 1));
        assert!(events.iter().any(|e| e.stage == 2));
        assert!(events.iter().any(|e| e.stage == 3), "split second targets use S3");
        assert!(events.iter().any(|e| e.note == TraceNote::Accepted));
        // Tracing never changes timing: a plain run gives the same report.
        let plain = crate::simulate(&program, b"abab", &ArchConfig::old_organization(1));
        assert_eq!(plain, report);
    }

    #[test]
    fn render_produces_stage_rows() {
        let program = figure4_program();
        let mut machine = Machine::new(&program, ArchConfig::new_organization(2, 1));
        let (_, events) = machine.run_traced(b"abab");
        let text = render_trace(&events, 0..12);
        assert!(text.contains("ENGINE 0 CORE 0"), "{text}");
        assert!(text.contains("ENGINE 0 CORE 1"), "{text}");
        assert!(text.contains("S2"), "{text}");
    }

    #[test]
    fn new_2x1_alternates_cores_by_character() {
        // Figure 4's bottom half: CORE0 handles even positions, CORE1 odd.
        let program = figure4_program();
        let mut machine = Machine::new(&program, ArchConfig::new_organization(2, 1));
        let (_, events) = machine.run_traced(b"abababab");
        for event in events {
            assert_eq!(event.pos % 2, event.core, "{event:?}");
        }
    }
}
