//! Bit-parallel execution of the epsilon-free NFA.
//!
//! One active state = one bit of a machine word (`u64` up to 64 states,
//! `u128` up to 128). A step is:
//!
//! ```text
//! D' = (⋃ follow[s] for s in D)  ∩  enter[class(byte)]
//! ```
//!
//! The follow union is table-driven: states are grouped eight to a
//! *chunk*, and `chunk_follow[chunk][m]` holds the pre-ORed follow masks
//! of the chunk's states selected by the 8-bit slice `m` of `D`. A step
//! is then at most `states/8` table lookups and ORs plus one AND — no
//! per-state work. `enter`, acceptance, and the prefilter are all indexed
//! by *byte class* (bytes no predicate distinguishes share a class), so
//! the tables stay small and cache-resident.
//!
//! Acceptance is checked *before* consuming the byte at each position
//! (and once more at end of input), which reproduces the reference
//! interpreter's earliest-end semantics exactly: `accept_any[class]`
//! holds the states with an arm firing under that class, and per-arm
//! masks resolve identifiers for `run_all`.

use crate::bytes::ByteSet;
use crate::nfa::Nfa;
use crate::prefilter::{self, Prefilter};
use crate::{HostAllOutcome, HostOutcome};

/// Byte-class partition: bytes that every predicate and accept arm treat
/// identically share a class.
#[derive(Debug, Clone)]
pub(crate) struct Classes {
    /// Byte value → class index.
    pub of: [u8; 256],
    /// Number of classes (≤ 256).
    pub count: usize,
    /// One representative byte per class.
    pub repr: Vec<u8>,
}

pub(crate) fn byte_classes<I: Iterator<Item = ByteSet>>(sets: I) -> Classes {
    let mut of = [0u8; 256];
    let mut count = 1usize;
    for set in sets {
        if set.is_empty() || set.is_full() {
            continue; // distinguishes nothing
        }
        let mut map: std::collections::HashMap<(u8, bool), u16> = std::collections::HashMap::new();
        let mut next = 0u16;
        let mut refined = [0u8; 256];
        for b in 0..=255u8 {
            let key = (of[usize::from(b)], set.contains(b));
            let class = *map.entry(key).or_insert_with(|| {
                let class = next;
                next += 1;
                class
            });
            refined[usize::from(b)] = class as u8;
        }
        of = refined;
        count = usize::from(next);
    }
    let mut repr = vec![0u8; count];
    let mut seen = vec![false; count];
    for b in 0..=255u8 {
        let class = usize::from(of[usize::from(b)]);
        if !seen[class] {
            seen[class] = true;
            repr[class] = b;
        }
    }
    Classes { of, count, repr }
}

/// The state-mask word: implemented for `u64` and `u128`.
pub(crate) trait Mask:
    Copy + Eq + std::ops::BitAnd<Output = Self> + std::ops::BitOr<Output = Self> + std::ops::BitOrAssign
{
    const ZERO: Self;
    fn bit(index: usize) -> Self;
    fn is_zero(self) -> bool;
    /// Lowest eight bits, as a table index.
    fn low8(self) -> usize;
    /// Logical shift right by eight.
    fn shr8(self) -> Self;
}

impl Mask for u64 {
    const ZERO: u64 = 0;
    fn bit(index: usize) -> u64 {
        1u64 << index
    }
    fn is_zero(self) -> bool {
        self == 0
    }
    fn low8(self) -> usize {
        (self & 0xff) as usize
    }
    fn shr8(self) -> u64 {
        self >> 8
    }
}

impl Mask for u128 {
    const ZERO: u128 = 0;
    fn bit(index: usize) -> u128 {
        1u128 << index
    }
    fn is_zero(self) -> bool {
        self == 0
    }
    fn low8(self) -> usize {
        (self & 0xff) as usize
    }
    fn shr8(self) -> u128 {
        self >> 8
    }
}

/// One identifier's acceptance masks.
#[derive(Debug, Clone)]
pub(crate) struct EngineArm<M> {
    pub id: Option<u16>,
    /// Per class: states whose arm for this id fires under the class.
    pub by_class: Vec<M>,
    /// States whose arm for this id fires at end of input.
    pub eoi: M,
}

#[derive(Debug, Clone)]
pub(crate) struct BitEngine<M> {
    pub classes: Classes,
    /// `chunk_follow[chunk * 256 + m]`: union of follow masks of the
    /// chunk's states selected by slice `m`.
    chunk_follow: Vec<M>,
    /// Per class: states enterable on a byte of the class.
    enter: Vec<M>,
    /// Per class: states with any arm firing under the class.
    accept_any: Vec<M>,
    /// States with any arm firing at end of input.
    accept_eoi: M,
    /// Arms in resolution order (unidentified first, then ids ascending).
    arms: Vec<EngineArm<M>>,
    /// Start configuration (bit 0).
    start: M,
    pub prefilter: Option<Prefilter<M>>,
    pub n_states: usize,
}

impl<M: Mask> BitEngine<M> {
    pub(crate) fn build(nfa: &Nfa) -> BitEngine<M> {
        let n = nfa.preds.len();
        let classes = byte_classes(
            nfa.preds.iter().copied().chain(nfa.arms.iter().flatten().map(|arm| arm.bytes)),
        );

        let follow_mask: Vec<M> = nfa
            .follow
            .iter()
            .map(|follows| {
                let mut mask = M::ZERO;
                for &t in follows {
                    mask |= M::bit(t as usize);
                }
                mask
            })
            .collect();

        // Subset-sum DP per chunk: table[m] = table[m without lowest bit]
        // | follow_mask[lowest state of m].
        let chunks = n.div_ceil(8);
        let mut chunk_follow = vec![M::ZERO; chunks * 256];
        for chunk in 0..chunks {
            let base = chunk * 256;
            for m in 1usize..256 {
                let low = m.trailing_zeros() as usize;
                let state = chunk * 8 + low;
                let from_states = if state < n { follow_mask[state] } else { M::ZERO };
                chunk_follow[base + m] = chunk_follow[base + (m & (m - 1))] | from_states;
            }
        }

        let mut enter = vec![M::ZERO; classes.count];
        for (class, &byte) in classes.repr.iter().enumerate() {
            for (state, pred) in nfa.preds.iter().enumerate() {
                if pred.contains(byte) {
                    enter[class] |= M::bit(state);
                }
            }
        }

        // Arms grouped by id across states.
        let mut arms: Vec<EngineArm<M>> = Vec::new();
        for (state, state_arms) in nfa.arms.iter().enumerate() {
            for arm in state_arms {
                let entry = match arms.iter_mut().find(|a| a.id == arm.id) {
                    Some(entry) => entry,
                    None => {
                        arms.push(EngineArm {
                            id: arm.id,
                            by_class: vec![M::ZERO; classes.count],
                            eoi: M::ZERO,
                        });
                        arms.last_mut().expect("just pushed")
                    }
                };
                for (class, &byte) in classes.repr.iter().enumerate() {
                    if arm.bytes.contains(byte) {
                        entry.by_class[class] |= M::bit(state);
                    }
                }
                if arm.eoi {
                    entry.eoi |= M::bit(state);
                }
            }
        }
        arms.sort_by_key(|arm| arm.id.map_or(-1i32, i32::from));

        let mut accept_any = vec![M::ZERO; classes.count];
        let mut accept_eoi = M::ZERO;
        for arm in &arms {
            for (class, &mask) in arm.by_class.iter().enumerate() {
                accept_any[class] |= mask;
            }
            accept_eoi |= arm.eoi;
        }

        let mut engine = BitEngine {
            classes,
            chunk_follow,
            enter,
            accept_any,
            accept_eoi,
            arms,
            start: M::bit(0),
            prefilter: None,
            n_states: n,
        };
        engine.prefilter = prefilter::derive(&engine);
        engine
    }

    #[inline]
    pub(crate) fn step(&self, d: M, class: usize) -> M {
        let mut union = M::ZERO;
        let mut rest = d;
        let mut chunk = 0;
        while !rest.is_zero() {
            union |= self.chunk_follow[chunk * 256 + rest.low8()];
            rest = rest.shr8();
            chunk += 1;
        }
        union & self.enter[class]
    }

    #[inline]
    pub(crate) fn class_of(&self, byte: u8) -> usize {
        usize::from(self.classes.of[usize::from(byte)])
    }

    pub(crate) fn start(&self) -> M {
        self.start
    }

    #[inline]
    pub(crate) fn accepts_on(&self, d: M, class: usize) -> bool {
        !(d & self.accept_any[class]).is_zero()
    }

    pub(crate) fn accepts_eoi(&self, d: M) -> bool {
        !(d & self.accept_eoi).is_zero()
    }

    /// First arm (resolution order) firing from `d`; `class == None`
    /// means end of input.
    pub(crate) fn resolve_id(&self, d: M, class: Option<usize>) -> Option<u16> {
        for arm in &self.arms {
            let mask = match class {
                Some(class) => arm.by_class[class],
                None => arm.eoi,
            };
            if !(d & mask).is_zero() {
                return arm.id;
            }
        }
        None
    }

    /// Exhaustive multi-match scan (the host analogue of
    /// [`cicero_isa::run_all`]): collects every distinct identifier,
    /// retiring arms as they fire, and stops early once nothing remains
    /// to learn.
    pub(crate) fn run_all(&self, input: &[u8]) -> HostAllOutcome {
        let mut out =
            HostAllOutcome { accepted: false, matched_ids: Vec::new(), first_match_position: None };
        let mut live: Vec<bool> = vec![true; self.arms.len()];
        let mut live_count = self.arms.len();
        let mut any = self.accept_any.clone();
        let mut eoi = self.accept_eoi;
        let mut d = self.start;
        let mut pos = 0usize;
        if live_count == 0 {
            return out; // no acceptance anywhere in the program
        }
        while pos < input.len() {
            if let Some(pf) = &self.prefilter {
                if d == pf.state {
                    pos = pf.find_stop(input, pos);
                    if pos >= input.len() {
                        break;
                    }
                }
            }
            let class = self.class_of(input[pos]);
            if !(d & any[class]).is_zero() {
                self.fire(
                    d,
                    Some(class),
                    pos,
                    &mut out,
                    &mut live,
                    &mut live_count,
                    &mut any,
                    &mut eoi,
                );
                if live_count == 0 {
                    return out;
                }
            }
            d = self.step(d, class);
            if d.is_zero() {
                return out;
            }
            pos += 1;
        }
        if !(d & eoi).is_zero() {
            self.fire(
                d,
                None,
                input.len(),
                &mut out,
                &mut live,
                &mut live_count,
                &mut any,
                &mut eoi,
            );
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn fire(
        &self,
        d: M,
        class: Option<usize>,
        pos: usize,
        out: &mut HostAllOutcome,
        live: &mut [bool],
        live_count: &mut usize,
        any: &mut [M],
        eoi: &mut M,
    ) {
        let mut retired = false;
        for (index, arm) in self.arms.iter().enumerate() {
            if !live[index] {
                continue;
            }
            let mask = match class {
                Some(class) => arm.by_class[class],
                None => arm.eoi,
            };
            if (d & mask).is_zero() {
                continue;
            }
            out.accepted = true;
            out.first_match_position.get_or_insert(pos);
            if let Some(id) = arm.id {
                if let Err(at) = out.matched_ids.binary_search(&id) {
                    out.matched_ids.insert(at, id);
                }
            }
            live[index] = false;
            *live_count -= 1;
            retired = true;
        }
        // An unidentified arm may fire later than an identified one; only
        // retire it once `accepted` is set — which the fire above did.
        if retired {
            for mask in any.iter_mut() {
                *mask = M::ZERO;
            }
            *eoi = M::ZERO;
            for (index, arm) in self.arms.iter().enumerate() {
                if !live[index] {
                    continue;
                }
                for (class, &mask) in arm.by_class.iter().enumerate() {
                    any[class] |= mask;
                }
                *eoi |= arm.eoi;
            }
        }
    }
}

/// Resumable matcher state over a [`BitEngine`] (the chunk-split
/// invariant engine core shared by `run` and the stream matcher).
#[derive(Debug, Clone)]
pub(crate) struct BitMatcher<M> {
    d: M,
}

impl<M: Mask> BitMatcher<M> {
    pub(crate) fn new(engine: &BitEngine<M>) -> BitMatcher<M> {
        BitMatcher { d: engine.start() }
    }

    /// Feed `chunk`, starting at absolute position `*position`.
    /// Returns `Some(outcome)` when the run concludes (acceptance or dead
    /// frontier); `position` is updated to the bytes consumed.
    pub(crate) fn feed(
        &mut self,
        engine: &BitEngine<M>,
        chunk: &[u8],
        position: &mut usize,
    ) -> Option<HostOutcome> {
        let mut offset = 0usize;
        while offset < chunk.len() {
            if let Some(pf) = &engine.prefilter {
                if self.d == pf.state {
                    let stop = pf.find_stop(chunk, offset);
                    *position += stop - offset;
                    offset = stop;
                    if offset >= chunk.len() {
                        return None;
                    }
                }
            }
            let class = engine.class_of(chunk[offset]);
            if engine.accepts_on(self.d, class) {
                return Some(HostOutcome {
                    accepted: true,
                    match_position: Some(*position),
                    matched_id: engine.resolve_id(self.d, Some(class)),
                });
            }
            self.d = engine.step(self.d, class);
            if self.d.is_zero() {
                return Some(HostOutcome {
                    accepted: false,
                    match_position: None,
                    matched_id: None,
                });
            }
            offset += 1;
            *position += 1;
        }
        None
    }

    pub(crate) fn finish(&self, engine: &BitEngine<M>, position: usize) -> HostOutcome {
        if engine.accepts_eoi(self.d) {
            HostOutcome {
                accepted: true,
                match_position: Some(position),
                matched_id: engine.resolve_id(self.d, None),
            }
        } else {
            HostOutcome { accepted: false, match_position: None, matched_id: None }
        }
    }
}
