//! Reference regex matcher: a Pike VM over a Thompson NFA built directly
//! from the front-end AST.
//!
//! This crate is the workspace's ground truth. It deliberately shares *no
//! lowering code* with either Cicero compiler:
//!
//! * character classes are evaluated as 256-bit membership predicates
//!   (rather than the `NotMatchCharOp` chains of the Cicero lowering);
//! * quantifiers are expanded by an independently written routine;
//! * execution is the textbook lockstep Pike VM of Thompson (1968) and
//!   Cox's RE2 write-ups — the same principles the paper cites as Cicero's
//!   foundations (§2).
//!
//! Differential tests assert that, for any supported pattern and input,
//! `Oracle` and the compiled-program interpreters agree.
//!
//! # Example
//!
//! ```
//! use regex_oracle::Oracle;
//!
//! let oracle = Oracle::new("(ab)|c{3,6}d+")?;
//! assert!(oracle.is_match(b"xx ccccd yy"));
//! assert!(!oracle.is_match(b"ccd"));
//! # Ok::<(), regex_oracle::OracleError>(())
//! ```

pub mod nfa;
pub mod vm;

use std::fmt;

use regex_frontend::{ParseRegexError, RegexAst};

pub use nfa::{Nfa, State};

/// A compiled reference matcher.
#[derive(Debug, Clone)]
pub struct Oracle {
    nfa: Nfa,
}

/// Error constructing an [`Oracle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The pattern failed to parse.
    Parse(ParseRegexError),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Parse(e) => write!(f, "invalid pattern: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<ParseRegexError> for OracleError {
    fn from(e: ParseRegexError) -> OracleError {
        OracleError::Parse(e)
    }
}

impl Oracle {
    /// Parse and compile a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`OracleError::Parse`] for unsupported patterns.
    pub fn new(pattern: &str) -> Result<Oracle, OracleError> {
        let ast = regex_frontend::parse(pattern)?;
        Ok(Oracle::from_ast(&ast))
    }

    /// Compile an already-parsed AST.
    pub fn from_ast(ast: &RegexAst) -> Oracle {
        Oracle { nfa: Nfa::from_ast(ast) }
    }

    /// Whether the pattern matches anywhere in `input` (respecting `^`/`$`
    /// anchors captured at parse time).
    pub fn is_match(&self, input: &[u8]) -> bool {
        vm::is_match(&self.nfa, input)
    }

    /// Position (byte index just past the match) of the earliest-ending
    /// match, mirroring the DSA's halt-on-first-accept semantics.
    pub fn match_end(&self, input: &[u8]) -> Option<usize> {
        vm::match_end(&self.nfa, input)
    }

    /// Every position at which some match ends, in ascending order.
    ///
    /// [`Oracle::match_end`] is always the first element (when any). The
    /// full set is what a halt-on-first-accept engine with *parallel*
    /// acceptance — the paper's multi-core organizations, which resolve
    /// races in hardware time rather than position order — may legitimately
    /// report; the differential harness validates simulator-reported
    /// positions against this set.
    pub fn match_ends(&self, input: &[u8]) -> Vec<usize> {
        vm::match_ends(&self.nfa, input)
    }

    /// The underlying NFA (for inspection and state-count metrics).
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pattern: &str, input: &[u8]) -> bool {
        Oracle::new(pattern).unwrap().is_match(input)
    }

    #[test]
    fn literal_substring_search() {
        assert!(m("abc", b"zzabczz"));
        assert!(m("abc", b"abc"));
        assert!(!m("abc", b"ab"));
        assert!(!m("abc", b"acb"));
    }

    #[test]
    fn anchoring() {
        assert!(m("^ab", b"abxx"));
        assert!(!m("^ab", b"xab"));
        assert!(m("ab$", b"xxab"));
        assert!(!m("ab$", b"abx"));
        assert!(m("^ab$", b"ab"));
        assert!(!m("^ab$", b"aab"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("^a{2,3}$", b"aa"));
        assert!(m("^a{2,3}$", b"aaa"));
        assert!(!m("^a{2,3}$", b"a"));
        assert!(!m("^a{2,3}$", b"aaaa"));
        assert!(m("^a*$", b""));
        assert!(m("^a+$", b"aaaa"));
        assert!(!m("^a+$", b""));
        assert!(m("^ab?c$", b"ac"));
        assert!(m("^ab?c$", b"abc"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("^(ab)|c{3,6}d+$", b"ab"));
        assert!(m("(ab)|c{3,6}d+", b"xxcccdyy"));
        assert!(!m("^(this|that)$", b"those"));
        assert!(m("th(is|at|ose)", b"it is those!"));
    }

    #[test]
    fn classes() {
        assert!(m("^[a-c]+$", b"abcba"));
        assert!(!m("^[a-c]+$", b"abd"));
        assert!(m("^[^ab]$", b"z"));
        assert!(!m("^[^ab]$", b"a"));
        assert!(m(r"\d{3}", b"ab123cd"));
        assert!(!m(r"^\d{3}$", b"12a"));
    }

    #[test]
    fn dot_matches_any_byte() {
        assert!(m("^.$", b"\n"));
        assert!(m("^.$", &[0xff]));
        assert!(!m("^.$", b""));
    }

    #[test]
    fn quantified_groups() {
        assert!(m("^(ab){2}$", b"abab"));
        assert!(!m("^(ab){2}$", b"ab"));
        assert!(m("^(a|b){1,3}$", b"aba"));
        assert!(!m("^(a|b){1,3}$", b"abab"));
        assert!(m("^(a{2,3}){4,7}$", b"aaaaaaaaa")); // 9 a's: 3+2+2+2
        assert!(!m("^(a{2,3}){4,7}$", b"a"));
    }

    #[test]
    fn match_end_is_earliest() {
        let o = Oracle::new("ab|cd").unwrap();
        assert_eq!(o.match_end(b"xxcdab"), Some(4));
        assert_eq!(o.match_end(b"nothing"), None);
    }

    #[test]
    fn match_ends_collects_every_end_position() {
        let o = Oracle::new("ab|cd").unwrap();
        assert_eq!(o.match_ends(b"xcdab"), vec![3, 5]);
        assert_eq!(o.match_ends(b"zzz"), Vec::<usize>::new());
        // The earliest end always heads the list.
        assert_eq!(o.match_ends(b"xcdab").first().copied(), o.match_end(b"xcdab"));

        // Overlapping quantifier matches: every admissible end appears.
        let o = Oracle::new("^a+").unwrap();
        assert_eq!(o.match_ends(b"aaa"), vec![1, 2, 3]);

        // `$`-anchored patterns can only end at the input boundary.
        let o = Oracle::new("a+$").unwrap();
        assert_eq!(o.match_ends(b"baaa"), vec![4]);
    }

    #[test]
    fn pathological_nesting_terminates() {
        // (a*)* style patterns must not hang the lockstep VM.
        let o = Oracle::new("^(a*)*b$").unwrap();
        assert!(o.is_match(b"aaab"));
        assert!(!o.is_match(&[b'a'; 64]));
    }

    #[test]
    fn empty_alternative_matches_everything_with_prefix() {
        // `ab|` has an empty branch; with implicit prefix/suffix it matches
        // any input, including the empty one.
        let o = Oracle::new("ab|").unwrap();
        assert!(o.is_match(b""));
        assert!(o.is_match(b"zzz"));
    }
}
