//! Rewrite patterns and the greedy fixed-point driver.
//!
//! This is the `mlir-lite` analogue of MLIR's
//! `applyPatternsAndFoldGreedily`: patterns are offered every operation in
//! the tree, innermost first, and the walk repeats until no pattern applies
//! (or the iteration cap is hit). Canonicalization in the `regex` dialect
//! (§3.2 of the paper) is implemented as a set of patterns run by this
//! driver.

use std::collections::BTreeMap;

use crate::op::{Operation, Region};

/// The outcome of offering an operation to a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite {
    /// The pattern did not apply; the operation is returned unchanged.
    Unchanged(Operation),
    /// Replace the operation with the given sequence (empty = erase).
    Replace(Vec<Operation>),
}

/// A local rewrite on one operation.
///
/// Patterns consume the matched op and either hand it back
/// ([`Rewrite::Unchanged`]) or produce replacement ops spliced into the
/// parent region in its place ([`Rewrite::Replace`]). Patterns must be
/// *terminating*: a pattern whose output it would itself rewrite again
/// forever trips the driver's iteration cap.
pub trait RewritePattern {
    /// Stable diagnostic name, reported in [`RewriteStats`].
    fn name(&self) -> &'static str;

    /// Offer `op` to the pattern.
    fn apply(&self, op: Operation) -> Rewrite;
}

/// Driver configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteConfig {
    /// Maximum number of whole-tree sweeps before giving up.
    pub max_iterations: usize,
}

impl Default for RewriteConfig {
    fn default() -> RewriteConfig {
        RewriteConfig { max_iterations: 64 }
    }
}

/// Statistics from one driver run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RewriteStats {
    /// Number of whole-tree sweeps performed.
    pub iterations: usize,
    /// Applications per pattern name.
    pub applications: BTreeMap<&'static str, usize>,
    /// True if the run stopped because of the iteration cap rather than
    /// reaching a fixed point.
    pub hit_iteration_cap: bool,
}

impl RewriteStats {
    /// Total number of pattern applications across all patterns.
    pub fn total_applications(&self) -> usize {
        self.applications.values().sum()
    }
}

/// Apply `patterns` to the regions **inside** `root` (and, recursively, the
/// whole subtree below them) until a fixed point.
///
/// The root operation itself is never replaced — like MLIR, the driver
/// anchors at a module-like op. Patterns see operations innermost-first
/// within each sweep, so a parent pattern observes its children already
/// canonicalized.
pub fn apply_patterns_greedily(
    root: &mut Operation,
    patterns: &[&dyn RewritePattern],
    config: RewriteConfig,
) -> RewriteStats {
    let mut stats = RewriteStats::default();
    loop {
        let mut changed = false;
        for region in root.regions_mut() {
            changed |= sweep_region(region, patterns, &mut stats);
        }
        stats.iterations += 1;
        if !changed {
            break;
        }
        if stats.iterations >= config.max_iterations {
            stats.hit_iteration_cap = true;
            break;
        }
    }
    stats
}

/// One innermost-first sweep over a region. Returns whether anything changed.
fn sweep_region(
    region: &mut Region,
    patterns: &[&dyn RewritePattern],
    stats: &mut RewriteStats,
) -> bool {
    let mut changed = false;
    let mut index = 0;
    while index < region.ops.len() {
        // Children first.
        for child_region in region.ops[index].regions_mut() {
            changed |= sweep_region(child_region, patterns, stats);
        }
        // Then offer this op to each pattern in order.
        let mut replaced = false;
        for pattern in patterns {
            let op = region.ops.remove(index);
            match pattern.apply(op) {
                Rewrite::Unchanged(op) => {
                    region.ops.insert(index, op);
                }
                Rewrite::Replace(new_ops) => {
                    *stats.applications.entry(pattern.name()).or_insert(0) += 1;
                    let n = new_ops.len();
                    region.ops.splice(index..index, new_ops);
                    changed = true;
                    replaced = true;
                    // Skip over the replacements: re-offering them in this
                    // same sweep would let a self-replacing pattern loop
                    // forever inside one sweep. The outer fixed-point loop
                    // canonicalizes them on the next sweep instead.
                    index += n;
                    break;
                }
            }
        }
        if !replaced {
            index += 1;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribute::Attribute;

    /// Rewrites `t.pair` into two `t.one` ops.
    struct SplitPair;
    impl RewritePattern for SplitPair {
        fn name(&self) -> &'static str {
            "split-pair"
        }
        fn apply(&self, op: Operation) -> Rewrite {
            if op.is("t.pair") {
                Rewrite::Replace(vec![Operation::new("t.one"), Operation::new("t.one")])
            } else {
                Rewrite::Unchanged(op)
            }
        }
    }

    /// Erases `t.nop` ops.
    struct EraseNop;
    impl RewritePattern for EraseNop {
        fn name(&self) -> &'static str {
            "erase-nop"
        }
        fn apply(&self, op: Operation) -> Rewrite {
            if op.is("t.nop") {
                Rewrite::Replace(vec![])
            } else {
                Rewrite::Unchanged(op)
            }
        }
    }

    /// Decrements a counter attribute until it reaches zero (convergent
    /// self-rewrite).
    struct CountDown;
    impl RewritePattern for CountDown {
        fn name(&self) -> &'static str {
            "count-down"
        }
        fn apply(&self, op: Operation) -> Rewrite {
            if !op.is("t.count") {
                return Rewrite::Unchanged(op);
            }
            let n = op.attr("n").and_then(Attribute::as_int).unwrap_or(0);
            if n <= 0 {
                Rewrite::Unchanged(op)
            } else {
                Rewrite::Replace(vec![Operation::new("t.count").with_attr("n", n - 1)])
            }
        }
    }

    /// Always rewrites `t.loop` to itself: non-terminating.
    struct Diverge;
    impl RewritePattern for Diverge {
        fn name(&self) -> &'static str {
            "diverge"
        }
        fn apply(&self, op: Operation) -> Rewrite {
            if op.is("t.loop") {
                Rewrite::Replace(vec![Operation::new("t.loop")])
            } else {
                Rewrite::Unchanged(op)
            }
        }
    }

    fn module(ops: Vec<Operation>) -> Operation {
        Operation::new("t.module").with_region(Region::with_ops(ops))
    }

    #[test]
    fn replacement_and_erasure() {
        let mut m = module(vec![
            Operation::new("t.nop"),
            Operation::new("t.pair"),
            Operation::new("t.keep"),
        ]);
        let stats =
            apply_patterns_greedily(&mut m, &[&SplitPair, &EraseNop], RewriteConfig::default());
        let names: Vec<&str> = m.regions()[0].ops.iter().map(|o| o.name().as_str()).collect();
        assert_eq!(names, vec!["t.one", "t.one", "t.keep"]);
        assert_eq!(stats.applications["split-pair"], 1);
        assert_eq!(stats.applications["erase-nop"], 1);
        assert!(!stats.hit_iteration_cap);
    }

    #[test]
    fn nested_regions_are_rewritten() {
        let inner = module(vec![Operation::new("t.pair")]);
        let mut m = module(vec![inner]);
        apply_patterns_greedily(&mut m, &[&SplitPair], RewriteConfig::default());
        let inner = &m.regions()[0].ops[0];
        assert_eq!(inner.regions()[0].len(), 2);
    }

    #[test]
    fn convergent_self_rewrite_reaches_fixpoint() {
        let mut m = module(vec![Operation::new("t.count").with_attr("n", 5i64)]);
        let stats = apply_patterns_greedily(&mut m, &[&CountDown], RewriteConfig::default());
        assert_eq!(stats.applications["count-down"], 5);
        assert!(!stats.hit_iteration_cap);
        assert_eq!(m.regions()[0].ops[0].attr("n"), Some(&Attribute::Int(0)));
    }

    #[test]
    fn divergent_pattern_hits_cap() {
        let mut m = module(vec![Operation::new("t.loop")]);
        let stats =
            apply_patterns_greedily(&mut m, &[&Diverge], RewriteConfig { max_iterations: 8 });
        assert!(stats.hit_iteration_cap);
        assert_eq!(stats.iterations, 8);
    }

    #[test]
    fn no_patterns_is_a_noop() {
        let mut m = module(vec![Operation::new("t.keep")]);
        let before = m.clone();
        let stats = apply_patterns_greedily(&mut m, &[], RewriteConfig::default());
        assert_eq!(m, before);
        assert_eq!(stats.total_applications(), 0);
        assert_eq!(stats.iterations, 1);
    }
}
