//! Figure 4, live: trace the same program on the **old** multi-engine and
//! the **new** multi-core organizations and print the pipeline tables.
//!
//! The paper's Figure 4 compares "old 1x2 (1 core per engine)" against
//! "new 2x1 (2 cores, 1 engine)" on the program
//! `split(3); matchany; jmp(0); match(a); match(b); split(10); match(a)…`
//! scanning `abaababd`. This example reproduces that setup.
//!
//! ```sh
//! cargo run --example figure4_trace
//! ```

use cicero::prelude::*;
use cicero::sim::{render_trace, Machine};

fn main() {
    // Figure 4's code column (completed with an acceptance so the program
    // validates; the figure elides everything past PC 6).
    let program = Program::from_instructions(vec![
        Instruction::Split(3),      // 0: split {1,3}
        Instruction::MatchAny,      // 1
        Instruction::Jump(0),       // 2
        Instruction::Match(b'a'),   // 3
        Instruction::Match(b'b'),   // 4
        Instruction::Split(7),      // 5: split {6,7} (the figure's split(10))
        Instruction::Match(b'a'),   // 6
        Instruction::AcceptPartial, // 7
    ])
    .unwrap();
    let input = b"abaababd";
    println!("code:\n{}", program.to_asm());
    println!("input: {:?}\n", String::from_utf8_lossy(input));
    println!("cell legend: 7 fetched | 7* forwarded | 7+ matched | 7x killed");
    println!("             7>3 jump/2nd split target | 7s3 split | 7! accept | 7w blocked\n");

    for (title, config) in [
        ("Old architecture 1x2 (1 core per engine)", ArchConfig::old_organization(2)),
        ("New architecture 2x1 (2 cores, 1 engine)", ArchConfig::new_organization(2, 1)),
    ] {
        let mut machine = Machine::new(&program, config.clone());
        let (report, events) = machine.run_traced(input);
        println!("== {title} ==");
        print!("{}", render_trace(&events, 0..24));
        println!(
            "result: {} in {} cycles, {} instructions, {} cross-engine transfers\n",
            if report.accepted { "MATCH" } else { "no match" },
            report.cycles,
            report.instructions,
            report.cross_engine_transfers,
        );
    }
    println!("The new organization keeps threads inside one engine (zero transfers)");
    println!("while both window characters execute concurrently on dedicated cores.");
}
