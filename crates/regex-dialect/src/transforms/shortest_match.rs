//! Transformation set 3 (§3.2): boundary quantifier reduction for
//! any-match engines.
//!
//! "This transformation applies to regex engines aimed at producing any
//! match rather than finding the longest match … applying reduction to the
//! quantifiers is permitted only at the boundaries of the RE." Examples
//! (reproduced in tests):
//!
//! * `a{2,3}|b{4,5} → a{2}|b{4}`
//! * `abcd*|efgh+ → abc|efgh`
//! * `ab*$` is untouched (the `$` disables the implicit suffix).
//!
//! Rationale: with the implicit `.*` suffix, a match of `ab+` exists in the
//! input iff a match of `ab` does — the extra repetitions only extend the
//! match, which an any-match engine does not report anyway. The transform
//! therefore preserves *match existence* but not match extent, and is
//! disabled automatically when the user anchored the pattern with `$`.

use mlir_lite::{Attribute, Context, Operation, Pass, PassError};

use crate::ops::{attrs, names, piece_parts, quantifier_bounds};

/// The shortest-match boundary reduction pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestMatchPass;

impl Pass for ShortestMatchPass {
    fn name(&self) -> &'static str {
        "regex-shortest-match-reduction"
    }

    fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
        if !root.is(names::ROOT) {
            return Err(PassError::new(format!("expected regex.root, got {}", root.name())));
        }
        // "Notably, this transformation is not executed if the .* suffix is
        // explicitly disabled via the RE $ operator."
        if root.attr(attrs::HAS_SUFFIX).and_then(Attribute::as_bool) != Some(true) {
            return Ok(());
        }
        for alternative in &mut root.only_region_mut().ops {
            reduce_tail(alternative);
        }
        Ok(())
    }
}

/// Reduce the trailing pieces of one alternative.
fn reduce_tail(concatenation: &mut Operation) {
    let pieces = &mut concatenation.only_region_mut().ops;
    while let Some(last) = pieces.last_mut() {
        let Some((min, max)) = trailing_bounds(last) else { break };
        if min == 0 {
            // `X{0,n}` at the boundary matches the empty string: drop the
            // piece entirely and re-examine the new last piece (`abcd*` →
            // `abc`, then `c` is unquantified and the loop stops).
            pieces.pop();
            continue;
        }
        if max == Some(min) {
            break; // already exact
        }
        // `X{min,max}` → `X{min}`; `{1}` is represented as no quantifier.
        let piece_ops = &mut last.only_region_mut().ops;
        piece_ops.pop(); // the quantifier
        if min > 1 {
            piece_ops.push(crate::ops::quantifier(min, Some(min)));
        }
        break;
    }
}

/// Bounds of the piece's quantifier, if it has one.
fn trailing_bounds(piece: &Operation) -> Option<(u32, Option<u32>)> {
    let (_, quant) = piece_parts(piece);
    quant.map(quantifier_bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ast_to_ir, ir_to_pattern};
    use mlir_lite::Context;

    fn reduce(pattern: &str) -> String {
        let mut ir = ast_to_ir(&regex_frontend::parse(pattern).unwrap());
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        ShortestMatchPass.run(&mut ir, &ctx).unwrap();
        ctx.verify(&ir).expect("reduced IR must verify");
        ir_to_pattern(&ir)
    }

    #[test]
    fn paper_examples() {
        assert_eq!(reduce("a{2,3}|b{4,5}"), "a{2}|b{4}");
        assert_eq!(reduce("abcd*|efgh+"), "abc|efgh");
        assert_eq!(reduce("ab*$"), "ab*$", "explicit $ disables the reduction");
        assert_eq!(reduce("ab+"), "ab", "the §3.2 `ab+.* becomes ab.*` case");
    }

    #[test]
    fn cascading_removal() {
        // Dropping `d*` exposes `c?`, which drops too, exposing `b+`.
        assert_eq!(reduce("ab+c?d*"), "ab");
        // An alternative that is all-optional reduces to the empty branch.
        assert_eq!(reduce("a*b*|xy"), "|xy");
    }

    #[test]
    fn unbounded_min_keeps_min_copies() {
        assert_eq!(reduce("ab{3,}"), "ab{3}");
    }

    #[test]
    fn interior_quantifiers_are_untouched() {
        assert_eq!(reduce("a+b"), "a+b");
        assert_eq!(reduce("a{2,5}bc"), "a{2,5}bc");
    }

    #[test]
    fn exact_bounds_are_untouched() {
        assert_eq!(reduce("ab{3}"), "ab{3}");
    }

    #[test]
    fn quantified_sub_regex_at_boundary_reduces() {
        assert_eq!(reduce("x(ab){2,9}"), "x(ab){2}");
        assert_eq!(reduce("x(ab)*"), "x");
    }

    #[test]
    fn rejects_non_root() {
        let mut not_root = crate::ops::match_char(b'a');
        let ctx = Context::new();
        assert!(ShortestMatchPass.run(&mut not_root, &ctx).is_err());
    }

    #[test]
    fn idempotent() {
        for p in ["a{2,3}|b{4,5}", "abcd*|efgh+", "ab+c?d*", "x(ab)*"] {
            let once = reduce(p);
            assert_eq!(reduce(&once), once, "not idempotent on {p}");
        }
    }
}

/// Leading-boundary quantifier reduction — an **extension** beyond the
/// paper, which only shows the trailing-boundary rule. The same argument
/// applies symmetrically at the head of the pattern: with the implicit
/// `.*` prefix, the input contains a match of `a{2,5}b` iff it contains a
/// match of `a{2}b` (any extra repetitions sit inside the `.*`). Disabled
/// by default ([`crate::transforms`] docs); enable via
/// `CompilerOptions::shortest_match_leading`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestMatchLeadingPass;

impl Pass for ShortestMatchLeadingPass {
    fn name(&self) -> &'static str {
        "regex-shortest-match-leading-reduction"
    }

    fn run(&self, root: &mut Operation, _ctx: &Context) -> Result<(), PassError> {
        if !root.is(names::ROOT) {
            return Err(PassError::new(format!("expected regex.root, got {}", root.name())));
        }
        // Only sound under the implicit `.*` prefix.
        if root.attr(attrs::HAS_PREFIX).and_then(Attribute::as_bool) != Some(true) {
            return Ok(());
        }
        for alternative in &mut root.only_region_mut().ops {
            reduce_head(alternative);
        }
        Ok(())
    }
}

/// Reduce the leading pieces of one alternative (mirror of [`reduce_tail`]).
fn reduce_head(concatenation: &mut Operation) {
    let pieces = &mut concatenation.only_region_mut().ops;
    while let Some(first) = pieces.first_mut() {
        let Some((min, max)) = trailing_bounds(first) else { break };
        if min == 0 {
            pieces.remove(0);
            continue;
        }
        if max == Some(min) {
            break;
        }
        let piece_ops = &mut first.only_region_mut().ops;
        piece_ops.pop();
        if min > 1 {
            piece_ops.push(crate::ops::quantifier(min, Some(min)));
        }
        break;
    }
}

#[cfg(test)]
mod leading_tests {
    use super::*;
    use crate::{ast_to_ir, ir_to_pattern};
    use mlir_lite::Context;

    fn reduce(pattern: &str) -> String {
        let mut ir = ast_to_ir(&regex_frontend::parse(pattern).unwrap());
        let mut ctx = Context::new();
        ctx.register_dialect(crate::dialect());
        ShortestMatchLeadingPass.run(&mut ir, &ctx).unwrap();
        ctx.verify(&ir).expect("reduced IR must verify");
        ir_to_pattern(&ir)
    }

    #[test]
    fn leading_quantifiers_reduce() {
        assert_eq!(reduce("a+b"), "ab");
        assert_eq!(reduce("a{2,5}b"), "a{2}b");
        assert_eq!(reduce("a*b*c"), "c", "zero-min pieces cascade off the head");
        assert_eq!(reduce("x*y*z*w"), "w");
    }

    #[test]
    fn cascading_removal_at_the_head() {
        // Dropping `a*` exposes `b?`, which drops too.
        assert_eq!(reduce("a*b?cd"), "cd");
    }

    #[test]
    fn anchored_patterns_untouched() {
        assert_eq!(reduce("^a+b"), "^a+b");
    }

    #[test]
    fn interior_and_trailing_untouched() {
        assert_eq!(reduce("ab+"), "ab+");
        assert_eq!(reduce("ab{2,5}c"), "ab{2,5}c");
    }

    #[test]
    fn semantic_equivalence_spot_checks() {
        for (pattern, inputs) in [
            ("a+b", vec!["aab", "ab", "b", "xbx", "aaab!"]),
            ("a{2,4}b", vec!["aab", "aaab", "ab", "b", "aaaaab"]),
            ("a*b?cd", vec!["cd", "abcd", "xcdy", "c"]),
        ] {
            let before = regex_oracle::Oracle::new(pattern).unwrap();
            let after_pattern = reduce(pattern);
            let after = regex_oracle::Oracle::new(&after_pattern).unwrap();
            for input in inputs {
                assert_eq!(
                    before.is_match(input.as_bytes()),
                    after.is_match(input.as_bytes()),
                    "{pattern} vs {after_pattern} on {input:?}"
                );
            }
        }
    }
}
