//! **Telemetry overhead** — hot-path cost of the sharded metrics
//! collector versus a no-op loop, exported to `BENCH_obs.json`.
//!
//! The observability tentpole moved `counter_add`/`observe` off the
//! global collector mutex onto per-thread shards (lock-free relaxed
//! atomics after first touch). This bench pins that property: it times
//! the identical loop body with and without telemetry, single-threaded
//! and with 4 threads hammering the *same* metric names on one
//! collector, and **fails (nonzero exit) if the per-iteration overhead
//! exceeds the bound** — so a regression that re-introduces a shared
//! lock on the hot path turns the CI job red instead of silently
//! shipping.
//!
//! Each iteration is one `counter_add` plus one bounded `observe`
//! (two metric ops). The bound is deliberately generous (default
//! 2000 ns/iteration, override via `CICERO_TELEM_OVERHEAD_BOUND_NS`):
//! it is a tripwire for contention collapse, not a microarchitectural
//! budget. Iteration count follows `CICERO_BENCH_SCALE`; output path
//! via `CICERO_BENCH_OBS` (empty to disable, default `BENCH_obs.json`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cicero_bench::{banner, f2, Scale};
use cicero_telemetry::Telemetry;

const BOUNDS: &[f64] = &[1.0, 10.0, 100.0, 1000.0];
const THREADS: usize = 4;

fn iterations(scale: Scale) -> u64 {
    match scale.patterns {
        8 => 200_000,     // quick
        200 => 2_000_000, // full
        _ => 1_000_000,
    }
}

fn ns_per_iter(total: Duration, iters: u64) -> f64 {
    total.as_secs_f64() * 1e9 / iters as f64
}

/// The loop body with telemetry: one counter add, one histogram observe.
fn hot_loop(telemetry: &Telemetry, iters: u64) {
    for i in 0..iters {
        telemetry.counter_add("bench.ops", 1);
        telemetry.observe_with("bench.value", (i & 0xFF) as f64, BOUNDS);
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Telemetry", "sharded-collector hot-path overhead vs a no-op loop", scale);
    let iters = iterations(scale);

    // Baseline: the same loop shape with the telemetry calls replaced by
    // one relaxed atomic add, so the comparison isolates collector cost.
    let sink = AtomicU64::new(0);
    let start = Instant::now();
    for i in 0..iters {
        sink.fetch_add(std::hint::black_box(i) & 1, Ordering::Relaxed);
    }
    let baseline = start.elapsed();
    std::hint::black_box(sink.load(Ordering::Relaxed));

    // Single-threaded enabled path.
    let telemetry = Telemetry::new();
    let start = Instant::now();
    hot_loop(&telemetry, iters);
    let single = start.elapsed();

    // Contended: THREADS writers, one collector, the *same* metric
    // names — the exact pattern that serialized on the old global mutex.
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let telemetry = telemetry.clone();
            scope.spawn(move || hot_loop(&telemetry, iters));
        }
    });
    let contended = start.elapsed();

    // Merge-on-read correctness doubles as the sanity check that every
    // recorded op survived the shard merge.
    let merge_start = Instant::now();
    let total_ops = telemetry.counter("bench.ops");
    let merge = merge_start.elapsed();
    assert_eq!(total_ops, iters * (THREADS as u64 + 1), "shard merge lost counter increments");

    let baseline_ns = ns_per_iter(baseline, iters);
    let single_ns = ns_per_iter(single, iters);
    let contended_ns = ns_per_iter(contended, iters * THREADS as u64);
    let single_overhead = (single_ns - baseline_ns).max(0.0);
    let contended_overhead = (contended_ns - baseline_ns).max(0.0);

    println!("  iterations : {iters} per thread (2 metric ops each)");
    println!("  baseline   : {} ns/iter (no-op loop)", f2(baseline_ns));
    println!("  single     : {} ns/iter ({} ns overhead)", f2(single_ns), f2(single_overhead));
    println!(
        "  contended  : {} ns/iter across {THREADS} threads ({} ns overhead)",
        f2(contended_ns),
        f2(contended_overhead)
    );
    println!("  merge read : {:.3} ms for {} ops", merge.as_secs_f64() * 1e3, total_ops);

    let bound_ns: f64 = std::env::var("CICERO_TELEM_OVERHEAD_BOUND_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000.0);

    let path = std::env::var("CICERO_BENCH_OBS").unwrap_or_else(|_| "BENCH_obs.json".to_owned());
    if !path.is_empty() {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"bench\": \"telemetry_overhead\",\n");
        let _ = writeln!(json, "  \"iterations_per_thread\": {iters},");
        let _ = writeln!(json, "  \"threads_contended\": {THREADS},");
        json.push_str(
            "  \"notes\": \"per-iteration cost of one counter_add + one bounded observe on the \
             sharded collector, against a relaxed-atomic no-op loop; the contended row hammers \
             the same metric names from all threads; the run exits nonzero when overhead \
             exceeds bound_ns\",\n",
        );
        let _ = writeln!(json, "  \"baseline_ns_per_iter\": {baseline_ns:.1},");
        let _ = writeln!(json, "  \"single_ns_per_iter\": {single_ns:.1},");
        let _ = writeln!(json, "  \"contended_ns_per_iter\": {contended_ns:.1},");
        let _ = writeln!(json, "  \"single_overhead_ns\": {single_overhead:.1},");
        let _ = writeln!(json, "  \"contended_overhead_ns\": {contended_overhead:.1},");
        let _ = writeln!(json, "  \"merge_read_ms\": {:.3},", merge.as_secs_f64() * 1e3);
        let _ = writeln!(json, "  \"bound_ns\": {bound_ns:.1}");
        json.push_str("}\n");
        match std::fs::write(&path, json) {
            Ok(()) => println!("\n  results written to {path}"),
            Err(e) => eprintln!("  warning: could not write {path}: {e}"),
        }
    }

    if single_overhead > bound_ns || contended_overhead > bound_ns {
        eprintln!(
            "  FAIL: telemetry overhead exceeds the {bound_ns} ns/iter bound \
             (single {single_overhead:.1} ns, contended {contended_overhead:.1} ns)"
        );
        std::process::exit(1);
    }
    println!("  bound      : PASS (<= {bound_ns} ns/iter)");
}
