//! **Figure 10** — code locality `D_offset` (Equation 1, lower is better)
//! for both compilers, with and without optimizations.
//!
//! Reproduction target: the new compiler "excels in consolidating code
//! paths" — its optimized code has a much lower `D_offset` than the old
//! compiler's, whose Code Restructuring *hurts* locality.

use cicero_bench::{banner, f2, paper, suites, CompiledSuite, Scale, Table};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 10", "code locality D_offset (lower is better)", scale);
    let mut table = Table::new(vec![
        "suite",
        "old w/o",
        "old w/",
        "new w/o",
        "new w/",
        "old/new (w/)",
        "(paper)",
    ]);
    for (i, bench) in suites(scale).iter().enumerate() {
        let s = CompiledSuite::build(bench);
        let avg = |programs: &[cicero_isa::Program]| {
            programs.iter().map(|p| p.total_jump_offset() as f64).sum::<f64>()
                / programs.len() as f64
        };
        let (ou, oo, nu, no) =
            (avg(&s.old_unopt), avg(&s.old_opt), avg(&s.new_unopt), avg(&s.new_opt));
        table.row(vec![
            s.name.to_owned(),
            f2(ou),
            f2(oo),
            f2(nu),
            f2(no),
            f2(oo / no),
            format!("({})", f2(paper::LOCALITY_IMPROVEMENT[i])),
        ]);
    }
    table.print();
    println!("\n  expectation: old/new (w/) > 1 everywhere; Code Restructuring increases");
    println!("  the old compiler's D_offset while Jump Simplification shrinks the new one's");
}
