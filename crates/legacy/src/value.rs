//! Dynamically typed values — the "Python object" layer of the legacy
//! compiler.
//!
//! The original Cicero compiler was a Python program: every AST node and
//! every mapped instruction was a dictionary of tagged fields. This module
//! recreates that representation so the legacy flow pays comparable
//! constant factors (allocation, hashing, tag dispatch) instead of
//! benefiting from Rust's typed structs — see DESIGN.md ("Old compiler in
//! Python" substitution).

use std::collections::HashMap;
use std::fmt;

/// A dynamically typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Python `None`.
    None,
    /// Python `bool`.
    Bool(bool),
    /// Python `int`.
    Int(i64),
    /// Python `str`.
    Str(String),
    /// Python `list`.
    List(Vec<Value>),
    /// Python `dict` with string keys.
    Dict(HashMap<String, Value>),
}

impl Value {
    /// An empty dictionary.
    pub fn dict() -> Value {
        Value::Dict(HashMap::new())
    }

    /// A dictionary with one `"type"` tag, the idiomatic AST-node shape.
    pub fn node(node_type: &str) -> Value {
        let mut d = HashMap::new();
        d.insert("type".to_owned(), Value::Str(node_type.to_owned()));
        Value::Dict(d)
    }

    /// Dictionary field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Dict(d) => d.get(key),
            _ => None,
        }
    }

    /// Dictionary field insertion (no-op with a debug panic on non-dicts,
    /// like an attribute error).
    pub fn set(&mut self, key: &str, value: Value) {
        match self {
            Value::Dict(d) => {
                d.insert(key.to_owned(), value);
            }
            other => panic!("set on non-dict value {other:?}"),
        }
    }

    /// The `"type"` tag of a node dictionary.
    pub fn node_type(&self) -> Option<&str> {
        self.get("type").and_then(Value::as_str)
    }

    /// Extract a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract a list slice.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Mutable list access.
    pub fn as_list_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::None => write!(f, "None"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(l) => {
                write!(f, "[")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Dict(d) => {
                let mut keys: Vec<&String> = d.keys().collect();
                keys.sort();
                write!(f, "{{")?;
                for (i, k) in keys.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k:?}: {}", d[*k])?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_construction_and_access() {
        let mut n = Value::node("piece");
        n.set("min", Value::Int(2));
        n.set("greedy", Value::Bool(true));
        assert_eq!(n.node_type(), Some("piece"));
        assert_eq!(n.get("min").and_then(Value::as_int), Some(2));
        assert_eq!(n.get("greedy").and_then(Value::as_bool), Some(true));
        assert_eq!(n.get("missing"), None);
    }

    #[test]
    fn list_mutation() {
        let mut l = Value::List(vec![Value::Int(1)]);
        l.as_list_mut().unwrap().push(Value::Int(2));
        assert_eq!(l.as_list().unwrap().len(), 2);
    }

    #[test]
    fn display_is_deterministic() {
        let mut n = Value::node("x");
        n.set("b", Value::Int(2));
        n.set("a", Value::Str("hi".into()));
        assert_eq!(n.to_string(), "{\"a\": \"hi\", \"b\": 2, \"type\": \"x\"}");
    }

    #[test]
    #[should_panic(expected = "set on non-dict")]
    fn set_on_non_dict_panics() {
        Value::Int(1).set("k", Value::None);
    }
}
