//! Thompson NFA construction from the front-end AST.

use regex_frontend::{Alternation, Atom, ClassSet, Piece, Quantifier, RegexAst};

/// Index of a state in the NFA's state vector.
pub type StateId = u32;

/// Sentinel for a not-yet-patched transition.
const DANGLING: StateId = u32::MAX;

/// A byte predicate on consuming transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteTest {
    /// Any byte.
    Any,
    /// Exactly this byte.
    Char(u8),
    /// Membership in a 256-bit set (negation already resolved).
    Set(ClassSet),
}

impl ByteTest {
    /// Evaluate the predicate.
    pub fn matches(&self, byte: u8) -> bool {
        match self {
            ByteTest::Any => true,
            ByteTest::Char(c) => *c == byte,
            ByteTest::Set(set) => set.contains(byte),
        }
    }
}

/// An NFA state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum State {
    /// Consume one byte passing `test`, then go to `next`.
    Byte {
        /// The predicate the consumed byte must satisfy.
        test: ByteTest,
        /// Successor state.
        next: StateId,
    },
    /// Epsilon-fork to both successors.
    Split {
        /// First successor (preferred order is irrelevant for matching).
        left: StateId,
        /// Second successor.
        right: StateId,
    },
    /// Accepting state.
    Accept,
}

/// A compiled Thompson NFA.
#[derive(Debug, Clone)]
pub struct Nfa {
    states: Vec<State>,
    start: StateId,
    /// When true (pattern ended with `$`), `Accept` only fires at
    /// end-of-input; otherwise it fires at any position.
    exact_end: bool,
}

impl Nfa {
    /// Build the NFA for a parsed pattern.
    pub fn from_ast(ast: &RegexAst) -> Nfa {
        let mut b = Builder { states: Vec::new() };
        let frag = b.alternation(&ast.alternation);
        let accept = b.push(State::Accept);
        b.patch(&frag.outs, accept);
        let start = if ast.has_prefix {
            // Implicit `.*` prefix: split between the body and a self-loop
            // consuming any byte.
            let any = b.push(State::Byte { test: ByteTest::Any, next: DANGLING });
            let split = b.push(State::Split { left: frag.start, right: any });
            b.set_next(any, split);
            split
        } else {
            frag.start
        };
        Nfa { states: b.states, start, exact_end: !ast.has_suffix }
    }

    /// The states, indexed by [`StateId`].
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether acceptance requires end-of-input.
    pub fn exact_end(&self) -> bool {
        self.exact_end
    }

    /// Number of states (a size metric for tests and reports).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the NFA has no states (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

/// A partially built sub-automaton: a start state plus the dangling
/// transitions that its acceptor must be patched into.
struct Frag {
    start: StateId,
    outs: Vec<Out>,
}

/// A dangling transition slot: `(state, which)` where `which` selects the
/// `next`/`left`/`right` field.
#[derive(Clone, Copy)]
struct Out {
    state: StateId,
    which: OutSlot,
}

#[derive(Clone, Copy)]
enum OutSlot {
    Next,
    Left,
    Right,
}

struct Builder {
    states: Vec<State>,
}

impl Builder {
    fn push(&mut self, state: State) -> StateId {
        let id = self.states.len() as StateId;
        self.states.push(state);
        id
    }

    fn set_next(&mut self, id: StateId, target: StateId) {
        match &mut self.states[id as usize] {
            State::Byte { next, .. } => *next = target,
            other => panic!("set_next on non-byte state {other:?}"),
        }
    }

    fn patch(&mut self, outs: &[Out], target: StateId) {
        for out in outs {
            let state = &mut self.states[out.state as usize];
            let slot = match (state, out.which) {
                (State::Byte { next, .. }, OutSlot::Next) => next,
                (State::Split { left, .. }, OutSlot::Left) => left,
                (State::Split { right, .. }, OutSlot::Right) => right,
                (s, _) => panic!("bad patch slot for {s:?}"),
            };
            debug_assert_eq!(*slot, DANGLING, "double patch");
            *slot = target;
        }
    }

    fn alternation(&mut self, alt: &Alternation) -> Frag {
        let mut frags: Vec<Frag> =
            alt.alternatives.iter().map(|c| self.concat(&c.pieces)).collect();
        let mut current = frags.pop().expect("alternation is never empty");
        // Fold right-to-left into a chain of splits.
        while let Some(prev) = frags.pop() {
            let split = self.push(State::Split { left: prev.start, right: current.start });
            let mut outs = prev.outs;
            outs.extend(current.outs);
            current = Frag { start: split, outs };
        }
        current
    }

    fn concat(&mut self, pieces: &[Piece]) -> Frag {
        if pieces.is_empty() {
            // Empty concatenation: a no-op fragment implemented as an
            // epsilon split whose both arms dangle to the continuation.
            let split = self.push(State::Split { left: DANGLING, right: DANGLING });
            return Frag {
                start: split,
                outs: vec![
                    Out { state: split, which: OutSlot::Left },
                    Out { state: split, which: OutSlot::Right },
                ],
            };
        }
        let mut iter = pieces.iter();
        let mut frag = self.piece(iter.next().expect("non-empty"));
        for piece in iter {
            let next = self.piece(piece);
            self.patch(&frag.outs, next.start);
            frag.outs = next.outs;
        }
        frag
    }

    fn piece(&mut self, piece: &Piece) -> Frag {
        match piece.quantifier {
            None => self.atom(&piece.atom),
            Some(q) => self.quantified(&piece.atom, q),
        }
    }

    /// Expand `atom{min,max}` by copying: `min` mandatory copies followed
    /// by either a star (unbounded) or `max - min` nested optionals.
    fn quantified(&mut self, atom: &Atom, q: Quantifier) -> Frag {
        let Quantifier { min, max } = q;
        let mut prefix: Option<Frag> = None;
        for _ in 0..min {
            let copy = self.atom(atom);
            prefix = Some(match prefix {
                None => copy,
                Some(mut p) => {
                    self.patch(&p.outs, copy.start);
                    p.outs = copy.outs;
                    p
                }
            });
        }
        let suffix = match max {
            None => Some(self.star(atom)),
            Some(max) => {
                let extras = max - min;
                let mut suffix: Option<Frag> = None;
                // Build right-to-left: opt(atom · opt(atom · …)).
                for _ in 0..extras {
                    let mut copy = self.atom(atom);
                    if let Some(inner) = suffix {
                        self.patch(&copy.outs, inner.start);
                        copy.outs = inner.outs;
                    }
                    let split = self.push(State::Split { left: copy.start, right: DANGLING });
                    let mut outs = copy.outs;
                    outs.push(Out { state: split, which: OutSlot::Right });
                    suffix = Some(Frag { start: split, outs });
                }
                suffix
            }
        };
        match (prefix, suffix) {
            (Some(mut p), Some(s)) => {
                self.patch(&p.outs, s.start);
                p.outs = s.outs;
                p
            }
            (Some(p), None) => p,
            (None, Some(s)) => s,
            (None, None) => unreachable!("parser rejects {{0}} and {{0,0}}"),
        }
    }

    fn star(&mut self, atom: &Atom) -> Frag {
        let body = self.atom(atom);
        let split = self.push(State::Split { left: body.start, right: DANGLING });
        self.patch(&body.outs, split);
        Frag { start: split, outs: vec![Out { state: split, which: OutSlot::Right }] }
    }

    fn atom(&mut self, atom: &Atom) -> Frag {
        match atom {
            Atom::Char(c) => self.byte(ByteTest::Char(*c)),
            Atom::Any => self.byte(ByteTest::Any),
            Atom::Class { negated, set } => {
                let set = if *negated { set.complement() } else { set.clone() };
                self.byte(ByteTest::Set(set))
            }
            Atom::Group(alt) => self.alternation(alt),
        }
    }

    fn byte(&mut self, test: ByteTest) -> Frag {
        let id = self.push(State::Byte { test, next: DANGLING });
        Frag { start: id, outs: vec![Out { state: id, which: OutSlot::Next }] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nfa(pattern: &str) -> Nfa {
        Nfa::from_ast(&regex_frontend::parse(pattern).unwrap())
    }

    #[test]
    fn no_dangling_transitions_survive() {
        for p in ["abc", "a|b|c", "a*b+c?", "(ab){2,4}", "[^x]{3,}", "^a(b|cd)*$"] {
            let n = nfa(p);
            for (i, s) in n.states().iter().enumerate() {
                match s {
                    State::Byte { next, .. } => {
                        assert_ne!(*next, DANGLING, "{p}: state {i} dangles")
                    }
                    State::Split { left, right } => {
                        assert_ne!(*left, DANGLING, "{p}: state {i} left dangles");
                        assert_ne!(*right, DANGLING, "{p}: state {i} right dangles");
                    }
                    State::Accept => {}
                }
            }
        }
    }

    #[test]
    fn exact_end_tracks_dollar() {
        assert!(nfa("abc$").exact_end());
        assert!(!nfa("abc").exact_end());
    }

    #[test]
    fn state_count_scales_with_quantifier_bounds() {
        let small = nfa("^a{2}$").len();
        let large = nfa("^a{40}$").len();
        assert!(large > small + 30, "copies must be materialized: {small} vs {large}");
    }

    #[test]
    fn prefix_loop_adds_two_states() {
        let anchored = nfa("^abc").len();
        let floating = nfa("abc").len();
        assert_eq!(floating, anchored + 2);
    }
}
