//! Streaming execution: a resumable [`Machine`] over a sliding input
//! window, so unbounded inputs are simulated in `O(chunk + window)`
//! memory.
//!
//! # How suspension works
//!
//! The lockstep window guarantees that live threads span at most
//! `2^CC_ID` consecutive positions starting at the oldest live position,
//! and positions only increase. [`StreamMachine::feed`] therefore drives
//! the machine until some live thread reaches a position past the bytes
//! buffered so far, pauses *before* that cycle executes (changing no
//! machine state), and drops every buffered byte below the window base.
//! Appending the next chunk and resuming replays the exact cycle sequence
//! of a whole-input run, which gives the subsystem its correctness
//! contract — **chunk-split invariance**:
//!
//! ```
//! use cicero_sim::{simulate, simulate_streaming, ArchConfig};
//!
//! let program = cicero_core::compile("ab|cd").unwrap().into_program();
//! let config = ArchConfig::new_organization(8, 1);
//! let whole = simulate(&program, b"xxxxcdxx", &config);
//! let streamed = simulate_streaming(&program, b"xxxxcdxx".chunks(3), &config);
//! assert_eq!(streamed, whole); // byte-identical report, any split
//! ```

use cicero_isa::Program;

use crate::config::ArchConfig;
use crate::machine::{InputRead, Machine};
use crate::stats::ExecReport;

/// What a [`StreamMachine::feed`] call concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStatus {
    /// The machine suspended at the chunk boundary and wants more input
    /// (or end-of-input via [`StreamMachine::finish`]).
    NeedInput,
    /// The run concluded: acceptance, a dead thread set, or the cycle
    /// limit. The report is available from [`StreamMachine::finish`].
    Complete,
}

/// The sliding window of buffered input: absolute positions
/// `[start, start + data.len())`, with everything below `start` already
/// slid past by the machine's lockstep window and dropped.
#[derive(Debug, Clone, Default)]
pub struct StreamBuffer {
    data: Vec<u8>,
    start: usize,
    eof: bool,
}

impl StreamBuffer {
    /// Absolute position one past the last buffered byte.
    fn end(&self) -> usize {
        self.start + self.data.len()
    }

    /// Bytes currently resident.
    pub fn resident(&self) -> usize {
        self.data.len()
    }

    /// Drop buffered bytes below `keep_from` (the machine's window base).
    fn trim_to(&mut self, keep_from: usize) {
        if keep_from > self.start {
            let drop = (keep_from - self.start).min(self.data.len());
            self.data.drain(..drop);
            self.start += drop;
        }
    }
}

impl InputRead for StreamBuffer {
    fn byte_at(&self, pos: usize) -> Option<u8> {
        assert!(pos >= self.start, "position {pos} was already trimmed from the stream window");
        let byte = self.data.get(pos - self.start).copied();
        // The machine only reads past the buffered bytes once end-of-input
        // was signalled; before that it pauses at the boundary.
        debug_assert!(byte.is_some() || self.eof, "read past the buffered window at {pos}");
        byte
    }
}

/// A [`Machine`] driven chunk by chunk over a sliding input buffer.
///
/// Lifecycle: [`feed`] chunks until it reports [`StreamStatus::Complete`]
/// (early acceptance) or the input ends, then [`finish`] for the final
/// [`ExecReport`]. The report is byte-identical to [`Machine::run`] over
/// the concatenated input, for every split.
///
/// [`feed`]: StreamMachine::feed
/// [`finish`]: StreamMachine::finish
#[derive(Debug)]
pub struct StreamMachine<'p> {
    machine: Machine<'p>,
    buffer: StreamBuffer,
    report: Option<ExecReport>,
    chunks: u64,
    suspends: u64,
    peak_resident: usize,
}

impl<'p> StreamMachine<'p> {
    /// Start a streamed run of `program` on a fresh machine.
    pub fn new(program: &'p Program, config: ArchConfig) -> StreamMachine<'p> {
        let mut machine = Machine::new(program, config);
        machine.begin();
        StreamMachine {
            machine,
            buffer: StreamBuffer::default(),
            report: None,
            chunks: 0,
            suspends: 0,
            peak_resident: 0,
        }
    }

    /// Attach a telemetry collector; the concluded run folds its report
    /// into the collector's `sim.*` series (see [`Machine::attach_telemetry`]).
    pub fn attach_telemetry(&mut self, telemetry: cicero_telemetry::Telemetry) {
        self.machine.attach_telemetry(telemetry);
    }

    /// Append one chunk and drive the machine as far as the buffered
    /// bytes allow. After the run concludes, further feeds are no-ops
    /// reporting [`StreamStatus::Complete`].
    pub fn feed(&mut self, chunk: &[u8]) -> StreamStatus {
        if self.report.is_some() {
            return StreamStatus::Complete;
        }
        self.chunks += 1;
        self.buffer.data.extend_from_slice(chunk);
        self.peak_resident = self.peak_resident.max(self.buffer.resident());
        if self.machine.drive(&self.buffer, Some(self.buffer.end())) {
            self.conclude();
            StreamStatus::Complete
        } else {
            self.suspends += 1;
            // Live positions span less than one window ending at (or past)
            // the buffer end, so after the trim at most `window` bytes
            // stay resident.
            if let Some(base) = self.machine.window_base() {
                self.buffer.trim_to(base);
            }
            StreamStatus::NeedInput
        }
    }

    /// Signal end of input, run the machine to conclusion, and return the
    /// final report. Idempotent.
    pub fn finish(&mut self) -> ExecReport {
        if let Some(report) = self.report {
            return report;
        }
        self.buffer.eof = true;
        self.machine.drive(&self.buffer, None);
        self.conclude();
        self.report.expect("concluded above")
    }

    /// Abort the run at the current cycle (deadline expiry) and report
    /// the partial progress: `accepted` reflects only what concluded so
    /// far. Idempotent; the machine cannot be resumed afterwards.
    pub fn abandon(&mut self) -> ExecReport {
        if let Some(report) = self.report {
            return report;
        }
        self.conclude();
        self.report.expect("concluded above")
    }

    fn conclude(&mut self) {
        self.report = Some(self.machine.finalize());
        self.buffer.data.clear();
        self.buffer.data.shrink_to_fit();
    }

    /// Whether the run has concluded.
    pub fn is_done(&self) -> bool {
        self.report.is_some()
    }

    /// Bytes currently resident in the sliding buffer.
    pub fn resident_bytes(&self) -> usize {
        self.buffer.resident()
    }

    /// Largest number of bytes ever resident at once — the memory
    /// high-water mark of the run (bounded by chunk size + window).
    pub fn peak_resident(&self) -> usize {
        self.peak_resident
    }

    /// Chunks fed so far.
    pub fn chunks(&self) -> u64 {
        self.chunks
    }

    /// Times the machine suspended at a chunk boundary.
    pub fn suspends(&self) -> u64 {
        self.suspends
    }
}

/// Run `program` over `chunks` as one concatenated input, streaming.
/// Equivalent to [`crate::simulate`] on the concatenation, byte for byte.
pub fn simulate_streaming<'a, I>(program: &Program, chunks: I, config: &ArchConfig) -> ExecReport
where
    I: IntoIterator<Item = &'a [u8]>,
{
    let mut stream = StreamMachine::new(program, config.clone());
    for chunk in chunks {
        if stream.feed(chunk) == StreamStatus::Complete {
            break;
        }
    }
    stream.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::simulate;
    use cicero_isa::Instruction::*;

    fn ab_or_cd() -> Program {
        Program::from_instructions(vec![
            Split(3),
            MatchAny,
            Jump(0),
            Split(7),
            Match(b'a'),
            Match(b'b'),
            AcceptPartial,
            Match(b'c'),
            Match(b'd'),
            AcceptPartial,
        ])
        .unwrap()
    }

    fn all_configs() -> Vec<ArchConfig> {
        vec![
            ArchConfig::old_organization(1),
            ArchConfig::old_organization(4),
            ArchConfig::new_organization(8, 1),
            ArchConfig::new_organization(8, 4),
        ]
    }

    fn test_programs() -> Vec<Program> {
        vec![
            ab_or_cd(),
            Program::from_instructions(vec![Match(b'a'), Match(b'b'), Accept]).unwrap(),
            Program::from_instructions(vec![
                NotMatch(b'a'),
                NotMatch(b'b'),
                MatchAny,
                AcceptPartial,
            ])
            .unwrap(),
            cicero_core::compile("[ab][bc][cd]").unwrap().into_program(),
            cicero_core::compile("(abcd|bcda|cdab|dabc|aabb)").unwrap().into_program(),
        ]
    }

    fn test_inputs() -> Vec<Vec<u8>> {
        vec![
            Vec::new(),
            b"a".to_vec(),
            b"ab".to_vec(),
            b"xxabyy".to_vec(),
            b"xcdab".to_vec(),
            b"zzzzzzzzzzzzzzzz".to_vec(),
            b"abc".to_vec(),
            vec![b'x'; 67],
            b"xxxxxxxxxxxxxxxxxxxxabcdxx".to_vec(),
        ]
    }

    #[test]
    fn streamed_reports_are_byte_identical_for_many_splits() {
        for program in test_programs() {
            for input in test_inputs() {
                for config in all_configs() {
                    let whole = simulate(&program, &input, &config);
                    for chunk_size in [1usize, 2, 3, 5, 7, 16] {
                        let streamed =
                            simulate_streaming(&program, input.chunks(chunk_size), &config);
                        assert_eq!(
                            streamed,
                            whole,
                            "chunk={chunk_size} config={} input={:?}",
                            config.name(),
                            String::from_utf8_lossy(&input)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn uneven_and_empty_chunks_are_invariant() {
        let p = ab_or_cd();
        let input = b"xxxxxxxxxxxxabxx";
        for config in all_configs() {
            let whole = simulate(&p, input, &config);
            let chunks: Vec<&[u8]> =
                vec![b"", &input[..1], b"", &input[1..4], &input[4..11], b"", &input[11..]];
            let streamed = simulate_streaming(&p, chunks.iter().copied(), &config);
            assert_eq!(streamed, whole, "{}", config.name());
        }
    }

    #[test]
    fn acceptance_concludes_the_stream_early() {
        let p = ab_or_cd();
        let config = ArchConfig::old_organization(1);
        let mut stream = StreamMachine::new(&p, config.clone());
        let mut status = StreamStatus::NeedInput;
        let mut fed = 0usize;
        for chunk in b"xxabzzzzzzzzzzzzzzzzzzzzzzzz".chunks(2) {
            fed += 1;
            status = stream.feed(chunk);
            if status == StreamStatus::Complete {
                break;
            }
        }
        assert_eq!(status, StreamStatus::Complete);
        assert!(fed < 10, "should conclude within a few chunks, took {fed}");
        let report = stream.finish();
        assert!(report.accepted);
        assert_eq!(report, simulate(&p, b"xxabzzzzzzzzzzzzzzzzzzzzzzzz", &config));
        // Feeding after conclusion is a no-op.
        assert_eq!(stream.feed(b"more"), StreamStatus::Complete);
    }

    #[test]
    fn resident_memory_is_bounded_by_chunk_plus_window() {
        // A scanning pattern that never matches: the machine walks the
        // whole input while the buffer stays within chunk + window bytes.
        let p = ab_or_cd();
        for config in all_configs() {
            let chunk = 128usize;
            let input = vec![b'z'; 16 * 1024];
            let mut stream = StreamMachine::new(&p, config.clone());
            for piece in input.chunks(chunk) {
                stream.feed(piece);
                assert!(
                    stream.resident_bytes() <= chunk + config.window(),
                    "{}: {} bytes resident after a feed",
                    config.name(),
                    stream.resident_bytes()
                );
            }
            let report = stream.finish();
            assert_eq!(report, simulate(&p, &input, &config), "{}", config.name());
            assert!(stream.peak_resident() <= chunk + config.window(), "{}", config.name());
            assert!(stream.suspends() > 0);
            assert_eq!(stream.chunks(), (input.len() / chunk) as u64);
        }
    }

    #[test]
    fn empty_input_streams() {
        let p = Program::from_instructions(vec![Match(b'a'), Accept]).unwrap();
        let config = ArchConfig::old_organization(1);
        let mut stream = StreamMachine::new(&p, config.clone());
        let report = stream.finish();
        assert_eq!(report, simulate(&p, b"", &config));
    }

    #[test]
    fn abandon_reports_partial_progress() {
        let p = ab_or_cd();
        let config = ArchConfig::old_organization(1);
        let mut stream = StreamMachine::new(&p, config.clone());
        stream.feed(b"zzzz");
        let report = stream.abandon();
        assert!(!report.accepted);
        assert!(report.cycles > 0, "some cycles were simulated before the abort");
        assert_eq!(stream.abandon(), report);
    }

    #[test]
    fn cycle_limit_concludes_a_stream() {
        // An ε-cycle with dedup off spins forever; the cycle limit must
        // conclude the streamed run just as it does the whole-input run.
        let p = Program::from_instructions(vec![Split(2), Jump(0), Match(b'a'), Jump(0), Accept])
            .unwrap();
        let mut config = ArchConfig::old_organization(1);
        config.dedup = false;
        config.max_cycles = 2_000;
        let whole = simulate(&p, b"aaa", &config);
        assert!(whole.hit_cycle_limit);
        let streamed = simulate_streaming(&p, b"aaa".chunks(1), &config);
        assert_eq!(streamed, whole);
    }

    #[test]
    fn telemetry_folds_the_concluded_run() {
        let p = ab_or_cd();
        let telemetry = cicero_telemetry::Telemetry::new();
        let mut stream = StreamMachine::new(&p, ArchConfig::old_organization(1));
        stream.attach_telemetry(telemetry.clone());
        for chunk in b"xxxxabxx".chunks(3) {
            if stream.feed(chunk) == StreamStatus::Complete {
                break;
            }
        }
        stream.finish();
        assert_eq!(telemetry.counter("sim.runs"), 1);
        assert_eq!(telemetry.counter("sim.matches"), 1);
    }
}
