//! Dialect definitions, the context/registry, and IR verification.

use std::collections::BTreeMap;
use std::fmt;

use crate::attribute::Attribute;
use crate::op::Operation;

/// The kind of an attribute, for declarative verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// [`Attribute::Bool`].
    Bool,
    /// [`Attribute::Int`].
    Int,
    /// [`Attribute::Char`].
    Char,
    /// [`Attribute::Str`].
    Str,
    /// [`Attribute::Symbol`].
    Symbol,
    /// [`Attribute::BoolArray`].
    BoolArray,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrKind::Bool => "bool",
            AttrKind::Int => "int",
            AttrKind::Char => "char",
            AttrKind::Str => "str",
            AttrKind::Symbol => "symbol",
            AttrKind::BoolArray => "bool array",
        };
        f.write_str(s)
    }
}

/// Declarative specification of one attribute of an op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSpec {
    /// Attribute name, e.g. `target_char`.
    pub name: &'static str,
    /// Required value kind.
    pub kind: AttrKind,
    /// Whether the attribute must be present.
    pub required: bool,
}

impl AttrSpec {
    /// A required attribute.
    pub const fn required(name: &'static str, kind: AttrKind) -> AttrSpec {
        AttrSpec { name, kind, required: true }
    }

    /// An optional attribute.
    pub const fn optional(name: &'static str, kind: AttrKind) -> AttrSpec {
        AttrSpec { name, kind, required: false }
    }
}

/// Allowed region arity of an op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionCount {
    /// Exactly `n` regions.
    Exact(usize),
    /// Any number of regions (used by variadic containers such as
    /// `regex.root`, whose regions are the alternatives).
    Any,
}

/// Per-op structural verifier hook: receives the op after the declarative
/// checks pass, returning a description of the violation if any.
pub type OpVerifier = fn(&Operation) -> Result<(), String>;

/// Definition of one operation within a dialect.
#[derive(Debug, Clone)]
pub struct OpDefinition {
    /// Op name *within* the dialect (no prefix).
    pub name: &'static str,
    /// Declarative attribute specs. Attributes not listed here are rejected.
    pub attrs: Vec<AttrSpec>,
    /// Region arity.
    pub regions: RegionCount,
    /// Optional extra structural verifier.
    pub verifier: Option<OpVerifier>,
}

impl OpDefinition {
    /// A definition with no attributes, fixed region count and no custom
    /// verifier.
    pub fn simple(name: &'static str, regions: usize) -> OpDefinition {
        OpDefinition {
            name,
            attrs: Vec::new(),
            regions: RegionCount::Exact(regions),
            verifier: None,
        }
    }
}

/// A dialect: a namespace of op definitions.
#[derive(Debug, Clone)]
pub struct Dialect {
    name: &'static str,
    ops: BTreeMap<&'static str, OpDefinition>,
}

impl Dialect {
    /// Create an empty dialect with the given namespace.
    pub fn new(name: &'static str) -> Dialect {
        Dialect { name, ops: BTreeMap::new() }
    }

    /// The dialect namespace, e.g. `regex`.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Register an op definition.
    ///
    /// # Panics
    ///
    /// Panics on duplicate registration — dialect construction is static,
    /// so a duplicate is a programming error.
    pub fn register_op(&mut self, def: OpDefinition) -> &mut Self {
        let prev = self.ops.insert(def.name, def);
        assert!(prev.is_none(), "duplicate op registration in dialect `{}`", self.name);
        self
    }

    /// Look up an op definition by its unqualified name.
    pub fn op(&self, name: &str) -> Option<&OpDefinition> {
        self.ops.get(name)
    }

    /// Iterate over all op definitions.
    pub fn ops(&self) -> impl Iterator<Item = &OpDefinition> {
        self.ops.values()
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Full name of the offending op.
    pub op: String,
    /// Path of op names from the root to the offending op (inclusive).
    pub path: Vec<String>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification failed at {}: {}", self.path.join(" > "), self.message)
    }
}

impl std::error::Error for VerifyError {}

/// The compilation context: a registry of dialects.
///
/// Mirrors `mlir::MLIRContext` in spirit — it owns dialect definitions and
/// provides whole-tree [verification](Context::verify). It deliberately does
/// *not* intern operations (ops are plain owned values here).
#[derive(Debug, Clone, Default)]
pub struct Context {
    dialects: BTreeMap<&'static str, Dialect>,
    /// When false, ops from unregistered dialects are rejected during
    /// verification (MLIR's `allowUnregisteredDialects`).
    allow_unregistered: bool,
}

impl Context {
    /// An empty context with no registered dialects.
    pub fn new() -> Context {
        Context::default()
    }

    /// Register a dialect.
    ///
    /// # Panics
    ///
    /// Panics if a dialect with the same namespace is already registered.
    pub fn register_dialect(&mut self, dialect: Dialect) -> &mut Self {
        let name = dialect.name();
        let prev = self.dialects.insert(name, dialect);
        assert!(prev.is_none(), "dialect `{name}` registered twice");
        self
    }

    /// Permit ops from dialects that are not registered (they skip
    /// declarative verification).
    pub fn allow_unregistered_dialects(&mut self, allow: bool) -> &mut Self {
        self.allow_unregistered = allow;
        self
    }

    /// Look up a registered dialect.
    pub fn dialect(&self, name: &str) -> Option<&Dialect> {
        self.dialects.get(name)
    }

    /// Verify the op tree rooted at `root` against the registered dialects.
    ///
    /// Checks, for each op: the dialect is registered (unless
    /// [allowed](Context::allow_unregistered_dialects)), the op is defined,
    /// required attributes are present with the right kinds, no undeclared
    /// attributes exist, the region arity matches, and the op's custom
    /// verifier (if any) passes.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found in pre-order.
    pub fn verify(&self, root: &Operation) -> Result<(), VerifyError> {
        let mut path = Vec::new();
        self.verify_rec(root, &mut path)
    }

    fn verify_rec(&self, op: &Operation, path: &mut Vec<String>) -> Result<(), VerifyError> {
        path.push(op.name().as_str().to_owned());
        let fail = |message: String, path: &[String]| VerifyError {
            op: op.name().as_str().to_owned(),
            path: path.to_vec(),
            message,
        };
        match self.dialects.get(op.name().dialect()) {
            None if self.allow_unregistered => {}
            None => {
                return Err(fail(
                    format!("dialect `{}` is not registered", op.name().dialect()),
                    path,
                ))
            }
            Some(dialect) => {
                let def = dialect.op(op.name().op()).ok_or_else(|| {
                    fail(
                        format!(
                            "op `{}` is not defined in dialect `{}`",
                            op.name().op(),
                            dialect.name()
                        ),
                        path,
                    )
                })?;
                self.verify_against(op, def, path)?;
            }
        }
        for region in op.regions() {
            for child in &region.ops {
                self.verify_rec(child, path)?;
            }
        }
        path.pop();
        Ok(())
    }

    fn verify_against(
        &self,
        op: &Operation,
        def: &OpDefinition,
        path: &[String],
    ) -> Result<(), VerifyError> {
        let fail = |message: String| VerifyError {
            op: op.name().as_str().to_owned(),
            path: path.to_vec(),
            message,
        };
        for spec in &def.attrs {
            match op.attr(spec.name) {
                Some(value) if value.kind() != spec.kind => {
                    return Err(fail(format!(
                        "attribute `{}` has kind {}, expected {}",
                        spec.name,
                        value.kind(),
                        spec.kind
                    )));
                }
                None if spec.required => {
                    return Err(fail(format!("missing required attribute `{}`", spec.name)));
                }
                _ => {}
            }
        }
        for (key, _) in op.attrs() {
            if !def.attrs.iter().any(|s| s.name == key) {
                return Err(fail(format!("undeclared attribute `{key}`")));
            }
        }
        if let RegionCount::Exact(n) = def.regions {
            if op.regions().len() != n {
                return Err(fail(format!("expected {n} region(s), found {}", op.regions().len())));
            }
        }
        if let Some(verifier) = def.verifier {
            verifier(op).map_err(fail)?;
        }
        Ok(())
    }
}

/// Convenience: check whether an attribute on `op` equals an expected value.
pub fn attr_eq(op: &Operation, key: &str, expected: &Attribute) -> bool {
    op.attr(key) == Some(expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Region;

    fn test_dialect() -> Dialect {
        let mut d = Dialect::new("t");
        d.register_op(OpDefinition {
            name: "leaf",
            attrs: vec![
                AttrSpec::required("value", AttrKind::Int),
                AttrSpec::optional("label", AttrKind::Str),
            ],
            regions: RegionCount::Exact(0),
            verifier: Some(|op| {
                let v = op.attr("value").and_then(Attribute::as_int).unwrap();
                if v < 0 {
                    Err("value must be non-negative".to_owned())
                } else {
                    Ok(())
                }
            }),
        });
        d.register_op(OpDefinition::simple("wrap", 1));
        d
    }

    fn ctx() -> Context {
        let mut c = Context::new();
        c.register_dialect(test_dialect());
        c
    }

    fn leaf(v: i64) -> Operation {
        Operation::new("t.leaf").with_attr("value", v)
    }

    #[test]
    fn well_formed_tree_verifies() {
        let tree = Operation::new("t.wrap").with_region(Region::with_ops(vec![leaf(1)]));
        ctx().verify(&tree).unwrap();
    }

    #[test]
    fn missing_required_attr_fails() {
        let op = Operation::new("t.leaf");
        let err = ctx().verify(&op).unwrap_err();
        assert!(err.message.contains("missing required attribute `value`"), "{err}");
    }

    #[test]
    fn wrong_attr_kind_fails() {
        let op = Operation::new("t.leaf").with_attr("value", "oops");
        let err = ctx().verify(&op).unwrap_err();
        assert!(err.message.contains("has kind str, expected int"), "{err}");
    }

    #[test]
    fn undeclared_attr_fails() {
        let op = leaf(0).with_attr("extra", true);
        let err = ctx().verify(&op).unwrap_err();
        assert!(err.message.contains("undeclared attribute `extra`"), "{err}");
    }

    #[test]
    fn region_arity_checked() {
        let op = Operation::new("t.wrap");
        let err = ctx().verify(&op).unwrap_err();
        assert!(err.message.contains("expected 1 region(s), found 0"), "{err}");
    }

    #[test]
    fn custom_verifier_runs() {
        let err = ctx().verify(&leaf(-3)).unwrap_err();
        assert!(err.message.contains("non-negative"), "{err}");
    }

    #[test]
    fn unknown_op_fails() {
        let err = ctx().verify(&Operation::new("t.mystery")).unwrap_err();
        assert!(err.message.contains("not defined in dialect"), "{err}");
    }

    #[test]
    fn unregistered_dialect_policy() {
        let op = Operation::new("other.thing");
        assert!(ctx().verify(&op).is_err());
        let mut permissive = ctx();
        permissive.allow_unregistered_dialects(true);
        permissive.verify(&op).unwrap();
    }

    #[test]
    fn error_path_names_nesting() {
        let tree = Operation::new("t.wrap").with_region(Region::with_ops(vec![leaf(-1)]));
        let err = ctx().verify(&tree).unwrap_err();
        assert_eq!(err.path, vec!["t.wrap".to_owned(), "t.leaf".to_owned()]);
    }
}
