//! IR-level fuzz smoke (MLIR-Smith style): randomly generated
//! *well-formed* `cicero`-dialect modules, checked for the invariants
//! that hold by construction of the dialect:
//!
//! 1. the dialect verifier accepts every generated module;
//! 2. the textual printer/parser round-trips it losslessly;
//! 3. codegen produces a valid ISA program (address space permitting),
//!    and the host-native lowering of that program agrees with the
//!    functional interpreter on verdict and earliest match end over
//!    random inputs.
//!
//! Unlike the grammar-level proptests (which fuzz *patterns*), this
//! generator builds IR directly, so it reaches module shapes the regex
//! front-end never emits — jump chains into splits, `not_match` runs,
//! interleaved `accept_partial_id` islands — exactly the shapes a later
//! IR-producing tool could create.
//!
//! Seedable and bounded for CI: `CICERO_IR_FUZZ_SEED` (default 42) and
//! `CICERO_IR_FUZZ_ITERS` (default 200) control the run.

use cicero::hostexec::HostProgram;
use cicero_dialect::ops;
use mlir_lite::{Context, Operation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// One random well-formed `cicero.program`: every op optionally labeled
/// (labels are unique by construction), every `split`/`jump` targeting a
/// defined label, and a terminator the ISA accepts in final position.
fn random_module(rng: &mut StdRng) -> Operation {
    let len = rng.random_range(3..40usize);
    let mut body: Vec<Operation> = Vec::with_capacity(len);
    for index in 0..len {
        let last = index == len - 1;
        // The final op must be an acceptance or a jump (the ISA's
        // falls-off-end rule); earlier ops draw from the full set.
        let kind = if last { rng.random_range(6..9u32) } else { rng.random_range(0..9u32) };
        let op = match kind {
            0 => ops::match_any(),
            1 | 2 => ops::match_char(b'a' + rng.random_range(0..4u32) as u8),
            3 => ops::not_match_char(b'a' + rng.random_range(0..4u32) as u8),
            4 => ops::split(format!("L{}", rng.random_range(0..len))),
            5 => ops::jump(format!("L{}", rng.random_range(0..len))),
            6 => ops::accept(),
            7 => ops::accept_partial(),
            _ => ops::accept_partial_id(rng.random_range(0..8u32) as u16),
        };
        // Label roughly half the ops; every op is a viable branch
        // target, so targets are drawn from all indices and the missing
        // labels are added below.
        body.push(if rng.random_bool(0.5) {
            op.with_attr(ops::attrs::SYM_NAME, format!("L{index}").as_str())
        } else {
            op
        });
    }
    // Ensure every referenced label is actually defined: collect the
    // targets, then label the ops they point at.
    let referenced: Vec<usize> = body
        .iter()
        .filter_map(ops::branch_target)
        .filter_map(|t| t.strip_prefix('L').and_then(|n| n.parse().ok()))
        .collect();
    for index in referenced {
        if ops::sym_name(&body[index]).is_none() {
            let op =
                body[index].clone().with_attr(ops::attrs::SYM_NAME, format!("L{index}").as_str());
            body[index] = op;
        }
    }
    ops::program(body)
}

#[test]
fn random_wellformed_modules_verify_roundtrip_and_lower() {
    let seed = env_u64("CICERO_IR_FUZZ_SEED", 42);
    let iters = env_u64("CICERO_IR_FUZZ_ITERS", 200);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut context = Context::new();
    context.register_dialect(ops::dialect());

    for iter in 0..iters {
        let module = random_module(&mut rng);
        let label = || format!("seed {seed}, iter {iter}:\n{}", module.to_text());

        // 1. The generator only emits well-formed modules.
        context.verify(&module).unwrap_or_else(|e| panic!("verifier rejected {}: {e}", label()));

        // 2. Textual round-trip is the identity.
        let reparsed = mlir_lite::parse(&module.to_text())
            .unwrap_or_else(|e| panic!("printed module does not parse back ({e}): {}", label()));
        assert_eq!(reparsed, module, "print/parse round-trip diverged: {}", label());

        // 3. Codegen succeeds on verified IR, and the host lowering
        //    agrees with the interpreter on random byte soup.
        let program = cicero_dialect::codegen(&module)
            .unwrap_or_else(|e| panic!("codegen failed on verified IR ({e}): {}", label()));
        let host = HostProgram::compile(&program);
        for _ in 0..8 {
            let input: Vec<u8> = (0..rng.random_range(0..24usize))
                .map(|_| b'a' + rng.random_range(0..5u32) as u8)
                .collect();
            let interp = cicero_isa::run(&program, &input);
            let hosted = host.run(&input);
            assert_eq!(
                hosted.accepted,
                interp.accepted,
                "host verdict diverged on {input:?} ({}): {}",
                host.engine_kind(),
                label()
            );
            assert_eq!(
                hosted.match_position,
                interp.match_position,
                "host match end diverged on {input:?} ({}): {}",
                host.engine_kind(),
                label()
            );
        }
    }
}

/// The generator is deterministic for a fixed seed — the property CI
/// relies on to make failures reproducible from the printed seed.
#[test]
fn generator_is_deterministic_per_seed() {
    let mut a = StdRng::seed_from_u64(7);
    let mut b = StdRng::seed_from_u64(7);
    for _ in 0..10 {
        assert_eq!(random_module(&mut a), random_module(&mut b));
    }
    let mut c = StdRng::seed_from_u64(8);
    let differs = (0..10).any(|_| random_module(&mut a) != random_module(&mut c));
    assert!(differs, "different seeds should diverge");
}
