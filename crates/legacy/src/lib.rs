//! The **old** Cicero compiler: a faithful reimplementation of the
//! original single-IR flow the paper uses as its baseline (§2.1, §5).
//!
//! Characteristics reproduced from the original:
//!
//! * **Premature lowering**: there is a single level of IR. Right after
//!   parsing, basic blocks are mapped to instruction memory and control
//!   instructions are generated with *absolute addresses*. All subsequent
//!   optimization happens on this mapped code and must re-patch addresses.
//! * **Code Restructuring** (§5, Figure 5): the only optimization. It
//!   reorganizes the root alternation's chain of `SPLIT`s into a balanced
//!   tree of minimal depth — treating the implicit `.*` prefix as one more
//!   leaf — which reduces jump count and split depth but scatters basic
//!   blocks, *hurting* code locality (Figure 6, Listing 2 middle column).
//! * **Dynamic implementation style**: the original compiler was written
//!   in Python. To model its constant factors honestly in a Rust
//!   workspace, this crate works on dynamically typed [`value::Value`]
//!   objects (tagged dictionaries and lists) throughout parsing, emission
//!   and restructuring, converting to the typed ISA representation only at
//!   the very end. See DESIGN.md for the substitution rationale.
//!
//! Without optimizations the old compiler emits the same layout as the new
//! one (Listing 2, left column); the compilers diverge only in what their
//! optimizations do and what they cost.
//!
//! # Example
//!
//! ```
//! use cicero_legacy::LegacyCompiler;
//!
//! let old = LegacyCompiler::new(true); // with Code Restructuring
//! let program = old.compile("ab|cd")?;
//! assert_eq!(program.total_jump_offset(), 21); // Listing 2, middle column
//! # Ok::<(), cicero_legacy::LegacyError>(())
//! ```

pub mod emit;
pub mod parser;
pub mod restructure;
pub mod value;

use std::fmt;

use cicero_isa::{Instruction, Program, ProgramError};

use value::Value;

/// A compile failure in the legacy flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LegacyError {
    /// Human-readable description (the original reported plain strings).
    pub message: String,
}

impl LegacyError {
    pub(crate) fn new(message: impl Into<String>) -> LegacyError {
        LegacyError { message: message.into() }
    }
}

impl fmt::Display for LegacyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "legacy compiler error: {}", self.message)
    }
}

impl std::error::Error for LegacyError {}

impl From<ProgramError> for LegacyError {
    fn from(e: ProgramError) -> LegacyError {
        LegacyError::new(e.to_string())
    }
}

/// The old single-IR compiler.
#[derive(Debug, Clone, Copy)]
pub struct LegacyCompiler {
    optimize: bool,
}

impl LegacyCompiler {
    /// Create a compiler; `optimize` enables Code Restructuring.
    pub fn new(optimize: bool) -> LegacyCompiler {
        LegacyCompiler { optimize }
    }

    /// Whether Code Restructuring is enabled.
    pub fn optimizing(&self) -> bool {
        self.optimize
    }

    /// Compile a pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`LegacyError`] for malformed patterns or programs
    /// exceeding instruction memory.
    pub fn compile(&self, pattern: &str) -> Result<Program, LegacyError> {
        let ast = parser::parse(pattern)?;
        let mut mapped = emit::emit(&ast)?;
        if self.optimize {
            restructure::code_restructuring(&mut mapped)?;
        }
        into_program(&mapped.code)
    }
}

/// Convert the dict-instruction list into a validated ISA program.
fn into_program(code: &[Value]) -> Result<Program, LegacyError> {
    let mut instructions = Vec::with_capacity(code.len());
    for (index, ins) in code.iter().enumerate() {
        let op = ins
            .get("op")
            .and_then(Value::as_str)
            .ok_or_else(|| LegacyError::new(format!("instruction {index} lacks an op")))?;
        let arg = || {
            ins.get("arg")
                .and_then(Value::as_int)
                .ok_or_else(|| LegacyError::new(format!("instruction {index} lacks an arg")))
        };
        let target = || -> Result<u16, LegacyError> {
            let raw = arg()?;
            u16::try_from(raw)
                .map_err(|_| LegacyError::new(format!("target {raw} out of range at {index}")))
        };
        let ch = || -> Result<u8, LegacyError> {
            let raw = arg()?;
            u8::try_from(raw)
                .map_err(|_| LegacyError::new(format!("char {raw} out of range at {index}")))
        };
        instructions.push(match op {
            "SPLIT" => Instruction::Split(target()?),
            "JMP" => Instruction::Jump(target()?),
            "MATCH" => Instruction::Match(ch()?),
            "NOT_MATCH" => Instruction::NotMatch(ch()?),
            "MATCH_ANY" => Instruction::MatchAny,
            "ACCEPT" => Instruction::Accept,
            "ACCEPT_PARTIAL" => Instruction::AcceptPartial,
            other => return Err(LegacyError::new(format!("unknown op `{other}` at {index}"))),
        });
    }
    Ok(Program::from_instructions(instructions)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unoptimized_matches_listing2_left_column() {
        use Instruction::*;
        let program = LegacyCompiler::new(false).compile("ab|cd").unwrap();
        assert_eq!(
            program.instructions(),
            &[
                Split(3),
                MatchAny,
                Jump(0),
                Split(8),
                Match(b'a'),
                Match(b'b'),
                Jump(7),
                AcceptPartial,
                Match(b'c'),
                Match(b'd'),
                Jump(7),
            ]
        );
        assert_eq!(program.total_jump_offset(), 14);
    }

    #[test]
    fn optimized_matches_listing2_middle_column() {
        use Instruction::*;
        let program = LegacyCompiler::new(true).compile("ab|cd").unwrap();
        assert_eq!(
            program.instructions(),
            &[
                Split(4),
                Match(b'a'),
                Match(b'b'),
                AcceptPartial,
                Split(8),
                Match(b'c'),
                Match(b'd'),
                Jump(3),
                MatchAny,
                Jump(0),
            ]
        );
        assert_eq!(program.total_jump_offset(), 21);
    }

    #[test]
    fn restructuring_balances_nested_alternations() {
        // Figure 5: (a|(b|(c|d))) — the tree of splits is balanced and the
        // number of JMPs reduced. Anchored to isolate the alternation.
        let unopt = LegacyCompiler::new(false).compile("^(a|(b|(c|d)))$").unwrap();
        let opt = LegacyCompiler::new(true).compile("^(a|(b|(c|d)))$").unwrap();
        let jumps = |p: &Program| {
            p.instructions().iter().filter(|i| matches!(i, Instruction::Jump(_))).count()
        };
        assert!(jumps(&opt) < jumps(&unopt), "{}\nvs\n{}", unopt, opt);
        // Split depth: longest chain of splits to reach any leaf is
        // log2(4) = 2 after balancing, versus 3 in the nested chain.
        assert_eq!(max_split_depth(&opt), 2, "{opt}");
        assert_eq!(max_split_depth(&unopt), 3, "{unopt}");
    }

    /// Depth of the split tree rooted at instruction 0: the maximum number
    /// of SPLITs traversed before reaching a non-control instruction.
    fn max_split_depth(p: &Program) -> usize {
        fn depth(p: &Program, at: u16, fuel: usize) -> usize {
            if fuel == 0 {
                return 0;
            }
            match p.get(at) {
                Some(Instruction::Split(t)) => {
                    1 + depth(p, at + 1, fuel - 1).max(depth(p, t, fuel - 1))
                }
                Some(Instruction::Jump(t)) => depth(p, t, fuel - 1),
                _ => 0,
            }
        }
        depth(p, 0, p.len())
    }

    #[test]
    fn both_modes_accept_the_same_inputs() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x01d);
        for pattern in [
            "ab|cd",
            "a|b|c|d|e",
            "th(is|at|ose)",
            "(ab)|c{3,6}d+",
            "x[abc]+y|z?w",
            "^exact$",
            "(a|(b|(c|d)))",
        ] {
            let unopt = LegacyCompiler::new(false).compile(pattern).unwrap();
            let opt = LegacyCompiler::new(true).compile(pattern).unwrap();
            let oracle = regex_oracle::Oracle::new(pattern).unwrap();
            for _ in 0..60 {
                let len = rng.random_range(0..16);
                let input: Vec<u8> = (0..len).map(|_| rng.random_range(b'a'..=b'f')).collect();
                let expected = oracle.is_match(&input);
                assert_eq!(cicero_isa::accepts(&unopt, &input), expected, "{pattern} unopt");
                assert_eq!(cicero_isa::accepts(&opt, &input), expected, "{pattern} opt");
            }
        }
    }

    #[test]
    fn agrees_with_new_compiler_unoptimized_layout() {
        // Figure 8's premise: without optimizations the two compilers
        // produce equivalent code.
        let new = cicero_core::Compiler::with_options(cicero_core::CompilerOptions::unoptimized());
        for pattern in ["ab|cd", "a+b*c?", "[^ab]x", "(one|two|three)+"] {
            let old_p = LegacyCompiler::new(false).compile(pattern).unwrap();
            let new_p = new.compile(pattern).unwrap();
            assert_eq!(old_p.instructions(), new_p.program().instructions(), "{pattern}");
        }
    }

    #[test]
    fn restructuring_hurts_locality_on_the_paper_example() {
        // Figure 6 / Listing 2: Code Restructuring *increases* D_offset.
        let unopt = LegacyCompiler::new(false).compile("ab|cd").unwrap();
        let opt = LegacyCompiler::new(true).compile("ab|cd").unwrap();
        assert!(opt.total_jump_offset() > unopt.total_jump_offset());
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in ["", "(", "a{3,1}", "[z-a]", "*"] {
            assert!(LegacyCompiler::new(true).compile(bad).is_err(), "{bad:?}");
        }
    }
}
